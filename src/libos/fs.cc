// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/libos/fs.h"

#include <cstring>
#include <stdexcept>

#include "src/crypto/sha256.h"

namespace eleos::libos {

// --- EnclaveFs ---

EnclaveFs::EnclaveFs(sim::Enclave& enclave, MemFs& host_fs, ExitMode mode,
                     rpc::RpcManager* rpc)
    : enclave_(&enclave),
      host_(&host_fs),
      mode_(mode),
      rpc_(rpc),
      faults_(&enclave.machine().fault_injector()),
      rejected_inputs_(enclave.machine().metrics().GetCounter(
          "boundary.rejected_inputs")) {
  if (mode == ExitMode::kRpc && rpc == nullptr) {
    throw std::invalid_argument("EnclaveFs: RPC mode requires an RpcManager");
  }
}

int64_t EnclaveFs::IagoMangle(int64_t genuine, size_t requested) {
  if (faults_ == nullptr || !faults_->armed(sim::Fault::kIagoReturn) ||
      !faults_->ShouldInject(sim::Fault::kIagoReturn)) {
    return genuine;
  }
  // Rotate through the classic lying-host shapes: one past the buffer, a
  // giant positive, an errno outside the allow-set, a high-bit-tagged count.
  switch (iago_cycle_.fetch_add(1, std::memory_order_relaxed) % 4) {
    case 0:
      return static_cast<int64_t>(requested) + 1;
    case 1:
      return INT64_MAX;
    case 2:
      return -4096;
    default:
      return static_cast<int64_t>((1ull << 62) | requested);
  }
}

int64_t EnclaveFs::ValidateCount(sim::CpuContext* cpu, int64_t r,
                                 size_t requested) {
  // The allow-set for a byte-count result: the genuine error value, or a
  // transfer no larger than what was asked for. Everything else is an Iago
  // return — using it would let the host walk trusted pointers out of the
  // caller's buffer.
  if (r == kMemFsError ||
      (r >= 0 && static_cast<uint64_t>(r) <= requested)) {
    last_status_ = Status::Ok();
    return r;
  }
  return RejectBoundary(cpu, BoundarySite::kFsResultRange);
}

int64_t EnclaveFs::RejectBoundary(sim::CpuContext* cpu, BoundarySite site) {
  iago_rejects_.Inc();
  rejected_inputs_->Add(1);
  enclave_->machine().metrics().trace().Record(
      telemetry::TraceKind::kBoundaryReject,
      cpu != nullptr ? cpu->clock.now() : 0, static_cast<uint64_t>(site));
  last_status_ = Status::HostileInput("untrusted fs result rejected");
  return kMemFsError;
}

int EnclaveFs::Open(sim::CpuContext* cpu, const std::string& path, int flags) {
  return Forward(cpu, path.size() + 64,
                 [&] { return host_->Open(path, flags); });
}

int EnclaveFs::Close(sim::CpuContext* cpu, int fd) {
  return Forward(cpu, 16, [&] { return host_->Close(fd); });
}

int64_t EnclaveFs::Read(sim::CpuContext* cpu, int fd, void* buf, size_t count) {
  const int64_t r = Forward(
      cpu, count, [&] { return IagoMangle(host_->Read(fd, buf, count), count); });
  return ValidateCount(cpu, r, count);
}

int64_t EnclaveFs::Write(sim::CpuContext* cpu, int fd, const void* buf,
                         size_t count) {
  const int64_t r = Forward(cpu, count, [&] {
    return IagoMangle(host_->Write(fd, buf, count), count);
  });
  return ValidateCount(cpu, r, count);
}

int64_t EnclaveFs::Pread(sim::CpuContext* cpu, int fd, void* buf, size_t count,
                         uint64_t offset) {
  const int64_t r = Forward(cpu, count, [&] {
    return IagoMangle(host_->Pread(fd, buf, count, offset), count);
  });
  return ValidateCount(cpu, r, count);
}

int64_t EnclaveFs::Pwrite(sim::CpuContext* cpu, int fd, const void* buf,
                          size_t count, uint64_t offset) {
  const int64_t r = Forward(cpu, count, [&] {
    return IagoMangle(host_->Pwrite(fd, buf, count, offset), count);
  });
  return ValidateCount(cpu, r, count);
}

int64_t EnclaveFs::Seek(sim::CpuContext* cpu, int fd, int64_t offset,
                        int whence) {
  return Forward(cpu, 16, [&] { return host_->Seek(fd, offset, whence); });
}

int EnclaveFs::Unlink(sim::CpuContext* cpu, const std::string& path) {
  return Forward(cpu, path.size() + 16, [&] { return host_->Unlink(path); });
}

// Copyable host-call functors for the batched RPC path: each slice becomes
// one refcounted job, so the callable must own its parameters by value. They
// run on the untrusted side, so the kIagoReturn mangle hook sits here —
// downstream of the genuine host call, upstream of the trusted validation.
struct PreadOp {
  EnclaveFs* fs;
  int fd;
  IoSlice s;
  int64_t operator()() const {
    return fs->IagoMangle(fs->host_->Pread(fd, s.buf, s.len, s.offset), s.len);
  }
};
struct PwriteOp {
  EnclaveFs* fs;
  int fd;
  ConstIoSlice s;
  int64_t operator()() const {
    return fs->IagoMangle(fs->host_->Pwrite(fd, s.buf, s.len, s.offset),
                          s.len);
  }
};

int64_t EnclaveFs::Preadv(sim::CpuContext* cpu, int fd, const IoSlice* slices,
                          size_t n) {
  if (n == 0) {
    return 0;
  }
  // The slice lengths are caller inputs of untrusted provenance (a hostile
  // host can hand back a forged iovec through a prior syscall): reject a
  // wrapping total BEFORE any cost is charged or any host call is made, so
  // an overflow can never buy a tiny charge for a huge transfer.
  size_t total_bytes = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!CheckedAdd(total_bytes, slices[i].len, &total_bytes)) {
      return RejectBoundary(cpu, BoundarySite::kFsIovecOverflow);
    }
  }
  syscalls_ += n;  // still one host syscall per slice, however it exits
  int64_t total = 0;
  if (mode_ == ExitMode::kRpc) {
    std::vector<PreadOp> ops;
    ops.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      ops.push_back(PreadOp{this, fd, slices[i]});
    }
    auto handles = rpc_->CallAsyncBatch(cpu, total_bytes / n, ops);
    std::vector<int64_t> results = rpc_->AwaitAll(cpu, handles);
    for (size_t i = 0; i < results.size(); ++i) {
      // Per-slice Iago validation: each count is clamped to ITS request.
      const int64_t r = ValidateCount(cpu, results[i], slices[i].len);
      if (r < 0) {
        return r;
      }
      total += r;
    }
    return total;
  }
  for (size_t i = 0; i < n; ++i) {
    const IoSlice& s = slices[i];
    const auto op = [&] {
      return IagoMangle(host_->Pread(fd, s.buf, s.len, s.offset), s.len);
    };
    const int64_t raw =
        cpu != nullptr ? enclave_->Ocall(*cpu, s.len, op) : op();
    const int64_t r = ValidateCount(cpu, raw, s.len);
    if (r < 0) {
      return r;
    }
    total += r;
  }
  return total;
}

int64_t EnclaveFs::Pwritev(sim::CpuContext* cpu, int fd,
                           const ConstIoSlice* slices, size_t n) {
  if (n == 0) {
    return 0;
  }
  // Same overflow-before-charge contract as Preadv.
  size_t total_bytes = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!CheckedAdd(total_bytes, slices[i].len, &total_bytes)) {
      return RejectBoundary(cpu, BoundarySite::kFsIovecOverflow);
    }
  }
  syscalls_ += n;
  int64_t total = 0;
  if (mode_ == ExitMode::kRpc) {
    std::vector<PwriteOp> ops;
    ops.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      ops.push_back(PwriteOp{this, fd, slices[i]});
    }
    auto handles = rpc_->CallAsyncBatch(cpu, total_bytes / n, ops);
    std::vector<int64_t> results = rpc_->AwaitAll(cpu, handles);
    for (size_t i = 0; i < results.size(); ++i) {
      const int64_t r = ValidateCount(cpu, results[i], slices[i].len);
      if (r < 0) {
        return r;
      }
      total += r;
    }
    return total;
  }
  for (size_t i = 0; i < n; ++i) {
    const ConstIoSlice& s = slices[i];
    const auto op = [&] {
      return IagoMangle(host_->Pwrite(fd, s.buf, s.len, s.offset), s.len);
    };
    const int64_t raw =
        cpu != nullptr ? enclave_->Ocall(*cpu, s.len, op) : op();
    const int64_t r = ValidateCount(cpu, raw, s.len);
    if (r < 0) {
      return r;
    }
    total += r;
  }
  return total;
}

// --- ProtectedFile ---

ProtectedFile::ProtectedFile(EnclaveFs& fs, sim::Enclave& enclave,
                             const std::string& path, uint64_t key_seed)
    : fs_(&fs),
      enclave_(&enclave),
      gcm_(crypto::DeriveAesKey("protected-file", key_seed).data()),
      nonce_rng_(key_seed ^ 0x517ec7ed) {
  fd_ = fs_->Open(nullptr, path, kRdWr | kCreate | kTrunc);
  if (fd_ < 0) {
    throw std::runtime_error("ProtectedFile: cannot open " + path);
  }
}

ProtectedFile::~ProtectedFile() { fs_->Close(nullptr, fd_); }

void ProtectedFile::LoadBlock(sim::CpuContext* cpu, uint64_t block,
                              uint8_t* plain) {
  auto it = blocks_.find(block);
  if (it == blocks_.end()) {
    std::memset(plain, 0, kBlockSize);  // sparse: never written
    return;
  }
  uint8_t sealed[kSealedBlockSize];
  const int64_t n = fs_->Pread(cpu, fd_, sealed, sizeof(sealed),
                               block * kSealedBlockSize);
  if (n != static_cast<int64_t>(sizeof(sealed))) {
    throw std::runtime_error("ProtectedFile: truncated block (tampering?)");
  }
  // Verify against the *enclave-stored* nonce and tag — the host-side copy
  // of the tag is ignored, so neither tampering nor replay of stale sealed
  // blocks can pass.
  const uint64_t aad = block;
  if (!gcm_.Open(it->second.nonce, reinterpret_cast<const uint8_t*>(&aad),
                 sizeof(aad), sealed, kBlockSize, it->second.tag, plain)) {
    throw std::runtime_error(
        "ProtectedFile: block integrity check failed (tampered or stale)");
  }
  enclave_->ChargeGcm(cpu, kBlockSize);
}

void ProtectedFile::StoreBlock(sim::CpuContext* cpu, uint64_t block,
                               const uint8_t* plain) {
  BlockMeta& meta = blocks_[block];
  nonce_rng_.FillBytes(meta.nonce, sizeof(meta.nonce));
  uint8_t sealed[kSealedBlockSize];
  const uint64_t aad = block;
  gcm_.Seal(meta.nonce, reinterpret_cast<const uint8_t*>(&aad), sizeof(aad),
            plain, kBlockSize, sealed, sealed + kBlockSize);
  std::memcpy(meta.tag, sealed + kBlockSize, crypto::kGcmTagSize);
  enclave_->ChargeGcm(cpu, kBlockSize);
  const int64_t n = fs_->Pwrite(cpu, fd_, sealed, sizeof(sealed),
                                block * kSealedBlockSize);
  if (n != static_cast<int64_t>(sizeof(sealed))) {
    throw std::runtime_error("ProtectedFile: short write");
  }
}

void ProtectedFile::WriteAt(sim::CpuContext* cpu, uint64_t offset,
                            const void* data, size_t len) {
  const auto* src = static_cast<const uint8_t*>(data);
  uint8_t plain[kBlockSize];
  while (len > 0) {
    const uint64_t block = offset / kBlockSize;
    const size_t in_block = offset % kBlockSize;
    const size_t chunk = std::min(len, kBlockSize - in_block);
    if (chunk < kBlockSize) {
      LoadBlock(cpu, block, plain);  // read-modify-write
    }
    std::memcpy(plain + in_block, src, chunk);
    StoreBlock(cpu, block, plain);
    src += chunk;
    offset += chunk;
    len -= chunk;
  }
  logical_size_ = std::max(logical_size_, offset);
}

void ProtectedFile::ReadAt(sim::CpuContext* cpu, uint64_t offset, void* out,
                           size_t len) {
  auto* dst = static_cast<uint8_t*>(out);
  uint8_t plain[kBlockSize];
  while (len > 0) {
    const uint64_t block = offset / kBlockSize;
    const size_t in_block = offset % kBlockSize;
    const size_t chunk = std::min(len, kBlockSize - in_block);
    LoadBlock(cpu, block, plain);
    std::memcpy(dst, plain + in_block, chunk);
    dst += chunk;
    offset += chunk;
    len -= chunk;
  }
}

}  // namespace eleos::libos
