// Copyright (c) Eleos reproduction authors. MIT license.
//
// AES-128, encrypt-direction only, table based (four 32-bit T-tables built at
// static-init time from the S-box).
//
// Eleos on real hardware uses AES-NI through the SGX SDK's IPPCP library for
// both SUVM backing-store pages (AES-GCM, like the EWB instruction) and
// client request payloads (AES-CTR). This environment has no SGX SDK, so the
// primitives are implemented from scratch. Only the encrypt direction is
// needed: both GCM and CTR encrypt counter blocks for either direction.
//
// This implementation prioritizes clarity + reasonable speed; the *simulated*
// cycle costs charged for in-enclave crypto use AES-NI per-byte rates (see
// sim::CostModel), independent of how fast this software path runs.

#ifndef ELEOS_SRC_CRYPTO_AES_H_
#define ELEOS_SRC_CRYPTO_AES_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace eleos::crypto {

inline constexpr size_t kAesBlockSize = 16;
inline constexpr size_t kAes128KeySize = 16;

// An expanded AES-128 key. Cheap to copy; safe to share across threads for
// encryption (the schedule is immutable after construction).
class Aes128 {
 public:
  explicit Aes128(const uint8_t key[kAes128KeySize]);

  // out = AES-128-Encrypt(key, in). in/out may alias.
  void EncryptBlock(const uint8_t in[kAesBlockSize],
                    uint8_t out[kAesBlockSize]) const;

 private:
  std::array<uint32_t, 44> round_keys_;  // 11 round keys x 4 words
};

}  // namespace eleos::crypto

#endif  // ELEOS_SRC_CRYPTO_AES_H_
