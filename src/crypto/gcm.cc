// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/crypto/gcm.h"

#include <cstring>

namespace eleos::crypto {
namespace {

uint64_t LoadBe64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | p[i];
  }
  return v;
}

void StoreBe64(uint8_t* p, uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    p[i] = static_cast<uint8_t>(v);
    v >>= 8;
  }
}

void StoreBe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

// Reduction constants for the 4-bit Shoup table walk (mbedTLS layout).
constexpr uint64_t kLast4[16] = {
    0x0000, 0x1c20, 0x3840, 0x2460, 0x7080, 0x6ca0, 0x48c0, 0x54e0,
    0xe100, 0xfd20, 0xd940, 0xc560, 0x9180, 0x8da0, 0xa9c0, 0xb5e0};

// Constant-time 16-byte comparison for tag checks.
bool ConstantTimeEqual16(const uint8_t* a, const uint8_t* b) {
  uint8_t diff = 0;
  for (int i = 0; i < 16; ++i) {
    diff |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return diff == 0;
}

}  // namespace

AesGcm::AesGcm(const uint8_t key[kAes128KeySize]) : aes_(key) {
  uint8_t h_block[16] = {0};
  aes_.EncryptBlock(h_block, h_block);

  uint64_t vh = LoadBe64(h_block);
  uint64_t vl = LoadBe64(h_block + 8);

  htable_[8] = {vh, vl};
  for (int i = 4; i > 0; i >>= 1) {
    const uint32_t t = static_cast<uint32_t>(vl & 1) * 0xe1000000U;
    vl = (vh << 63) | (vl >> 1);
    vh = (vh >> 1) ^ (static_cast<uint64_t>(t) << 32);
    htable_[i] = {vh, vl};
  }
  for (int i = 2; i <= 8; i *= 2) {
    for (int j = 1; j < i; ++j) {
      htable_[i + j] = {htable_[i].hi ^ htable_[j].hi, htable_[i].lo ^ htable_[j].lo};
    }
  }
  htable_[0] = {0, 0};
}

AesGcm::U128 AesGcm::GhashMul(const U128& x) const {
  uint8_t buf[16];
  StoreBe64(buf, x.hi);
  StoreBe64(buf + 8, x.lo);

  uint8_t lo4 = buf[15] & 0xf;
  uint64_t zh = htable_[lo4].hi;
  uint64_t zl = htable_[lo4].lo;

  for (int i = 15; i >= 0; --i) {
    lo4 = buf[i] & 0xf;
    const uint8_t hi4 = (buf[i] >> 4) & 0xf;

    if (i != 15) {
      const uint8_t rem = static_cast<uint8_t>(zl & 0xf);
      zl = (zh << 60) | (zl >> 4);
      zh = zh >> 4;
      zh ^= kLast4[rem] << 48;
      zh ^= htable_[lo4].hi;
      zl ^= htable_[lo4].lo;
    }
    const uint8_t rem = static_cast<uint8_t>(zl & 0xf);
    zl = (zh << 60) | (zl >> 4);
    zh = zh >> 4;
    zh ^= kLast4[rem] << 48;
    zh ^= htable_[hi4].hi;
    zl ^= htable_[hi4].lo;
  }
  return {zh, zl};
}

void AesGcm::Ghash(const uint8_t* aad, size_t aad_len, const uint8_t* ct,
                   size_t ct_len, uint8_t out[16]) const {
  U128 y{0, 0};

  auto absorb = [&](const uint8_t* data, size_t len) {
    size_t off = 0;
    while (off < len) {
      uint8_t block[16] = {0};
      const size_t chunk = (len - off < 16) ? len - off : 16;
      std::memcpy(block, data + off, chunk);
      y.hi ^= LoadBe64(block);
      y.lo ^= LoadBe64(block + 8);
      y = GhashMul(y);
      off += chunk;
    }
  };

  if (aad != nullptr && aad_len > 0) {
    absorb(aad, aad_len);
  }
  if (ct != nullptr && ct_len > 0) {
    absorb(ct, ct_len);
  }

  // Length block: bit lengths of AAD and ciphertext.
  y.hi ^= static_cast<uint64_t>(aad_len) * 8;
  y.lo ^= static_cast<uint64_t>(ct_len) * 8;
  y = GhashMul(y);

  StoreBe64(out, y.hi);
  StoreBe64(out + 8, y.lo);
}

void AesGcm::CtrCrypt(const uint8_t j0[16], const uint8_t* in, uint8_t* out,
                      size_t n) const {
  uint8_t counter_block[16];
  uint8_t keystream[16];
  std::memcpy(counter_block, j0, 16);
  uint32_t counter = (static_cast<uint32_t>(j0[12]) << 24) |
                     (static_cast<uint32_t>(j0[13]) << 16) |
                     (static_cast<uint32_t>(j0[14]) << 8) | j0[15];

  size_t off = 0;
  while (off < n) {
    ++counter;  // data blocks start at J0 + 1
    StoreBe32(counter_block + 12, counter);
    aes_.EncryptBlock(counter_block, keystream);
    const size_t chunk = (n - off < 16) ? n - off : 16;
    for (size_t i = 0; i < chunk; ++i) {
      out[off + i] = static_cast<uint8_t>(in[off + i] ^ keystream[i]);
    }
    off += chunk;
  }
}

void AesGcm::Seal(const uint8_t nonce[kGcmNonceSize], const uint8_t* aad,
                  size_t aad_len, const uint8_t* plaintext, size_t n,
                  uint8_t* ciphertext, uint8_t tag[kGcmTagSize]) const {
  uint8_t j0[16];
  std::memcpy(j0, nonce, kGcmNonceSize);
  j0[12] = 0;
  j0[13] = 0;
  j0[14] = 0;
  j0[15] = 1;

  CtrCrypt(j0, plaintext, ciphertext, n);

  uint8_t s[16];
  Ghash(aad, aad_len, ciphertext, n, s);

  uint8_t ekj0[16];
  aes_.EncryptBlock(j0, ekj0);
  for (int i = 0; i < 16; ++i) {
    tag[i] = static_cast<uint8_t>(s[i] ^ ekj0[i]);
  }
}

bool AesGcm::Open(const uint8_t nonce[kGcmNonceSize], const uint8_t* aad,
                  size_t aad_len, const uint8_t* ciphertext, size_t n,
                  const uint8_t tag[kGcmTagSize], uint8_t* plaintext) const {
  uint8_t j0[16];
  std::memcpy(j0, nonce, kGcmNonceSize);
  j0[12] = 0;
  j0[13] = 0;
  j0[14] = 0;
  j0[15] = 1;

  uint8_t s[16];
  Ghash(aad, aad_len, ciphertext, n, s);

  uint8_t expected[16];
  aes_.EncryptBlock(j0, expected);
  for (int i = 0; i < 16; ++i) {
    expected[i] = static_cast<uint8_t>(s[i] ^ expected[i]);
  }
  if (!ConstantTimeEqual16(expected, tag)) {
    return false;
  }

  CtrCrypt(j0, ciphertext, plaintext, n);
  return true;
}

}  // namespace eleos::crypto
