// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/crypto/ctr.h"

#include <cstring>

namespace eleos::crypto {

void AesCtrCrypt(const Aes128& aes, const uint8_t iv[12], uint32_t initial_counter,
                 const uint8_t* in, uint8_t* out, size_t n) {
  uint8_t counter_block[kAesBlockSize];
  uint8_t keystream[kAesBlockSize];
  std::memcpy(counter_block, iv, 12);

  uint32_t counter = initial_counter;
  size_t off = 0;
  while (off < n) {
    counter_block[12] = static_cast<uint8_t>(counter >> 24);
    counter_block[13] = static_cast<uint8_t>(counter >> 16);
    counter_block[14] = static_cast<uint8_t>(counter >> 8);
    counter_block[15] = static_cast<uint8_t>(counter);
    aes.EncryptBlock(counter_block, keystream);
    const size_t chunk = (n - off < kAesBlockSize) ? n - off : kAesBlockSize;
    for (size_t i = 0; i < chunk; ++i) {
      out[off + i] = static_cast<uint8_t>(in[off + i] ^ keystream[i]);
    }
    off += chunk;
    ++counter;
  }
}

}  // namespace eleos::crypto
