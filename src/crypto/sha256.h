// Copyright (c) Eleos reproduction authors. MIT license.
//
// SHA-256 (FIPS 180-4). Used for key derivation: the simulated enclave
// derives its random per-application SUVM sealing key and the request-crypto
// session keys from a seed via SHA-256, mirroring how sealing keys are
// derived via EGETKEY on real SGX.

#ifndef ELEOS_SRC_CRYPTO_SHA256_H_
#define ELEOS_SRC_CRYPTO_SHA256_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace eleos::crypto {

inline constexpr size_t kSha256DigestSize = 32;

class Sha256 {
 public:
  Sha256();

  void Update(const void* data, size_t len);
  void Final(uint8_t digest[kSha256DigestSize]);

  // One-shot convenience.
  static std::array<uint8_t, kSha256DigestSize> Digest(const void* data, size_t len);

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

// Derives a 16-byte AES key from a label and seed (SHA-256 truncated), the
// simulator's stand-in for EGETKEY-style key derivation.
std::array<uint8_t, 16> DeriveAesKey(const char* label, uint64_t seed);

}  // namespace eleos::crypto

#endif  // ELEOS_SRC_CRYPTO_SHA256_H_
