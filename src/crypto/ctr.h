// Copyright (c) Eleos reproduction authors. MIT license.
//
// AES-128-CTR stream cipher. Used for client request/response payloads, as in
// the paper's end-to-end evaluation ("encrypted by the clients and decrypted
// by the server using AES-NI instructions ... in CTR mode with a randomized
// 128-bit key").

#ifndef ELEOS_SRC_CRYPTO_CTR_H_
#define ELEOS_SRC_CRYPTO_CTR_H_

#include <cstddef>
#include <cstdint>

#include "src/crypto/aes.h"

namespace eleos::crypto {

// XOR-crypts `n` bytes of `in` into `out` (encrypt == decrypt). The 16-byte
// counter block is built from a 12-byte IV and a 32-bit big-endian block
// counter starting at `initial_counter`. in/out may alias.
void AesCtrCrypt(const Aes128& aes, const uint8_t iv[12], uint32_t initial_counter,
                 const uint8_t* in, uint8_t* out, size_t n);

}  // namespace eleos::crypto

#endif  // ELEOS_SRC_CRYPTO_CTR_H_
