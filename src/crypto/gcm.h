// Copyright (c) Eleos reproduction authors. MIT license.
//
// AES-128-GCM authenticated encryption (NIST SP 800-38D), 12-byte nonces,
// 16-byte tags.
//
// This is the cipher SGX's EWB instruction uses to protect evicted EPC pages
// (privacy + integrity + freshness via a per-eviction nonce), and the one the
// paper's SUVM uses for its backing store: "The encryption, signing, and
// validation operations use AES-GCM just like the EWB SGX instruction."
// Both the simulated SGX driver and SUVM in this repository seal pages with
// this implementation.

#ifndef ELEOS_SRC_CRYPTO_GCM_H_
#define ELEOS_SRC_CRYPTO_GCM_H_

#include <cstddef>
#include <cstdint>

#include "src/crypto/aes.h"

namespace eleos::crypto {

inline constexpr size_t kGcmNonceSize = 12;
inline constexpr size_t kGcmTagSize = 16;

// AES-128-GCM context. Construction precomputes the GHASH key tables; the
// object is immutable afterwards and safe to share across threads.
class AesGcm {
 public:
  explicit AesGcm(const uint8_t key[kAes128KeySize]);

  // Encrypts `n` bytes of `plaintext` into `ciphertext` (may alias) and writes
  // the authentication tag. `aad`/`aad_len` is additional authenticated (but
  // not encrypted) data; SUVM binds the backing-store address through it to
  // prevent block-swap attacks.
  void Seal(const uint8_t nonce[kGcmNonceSize], const uint8_t* aad, size_t aad_len,
            const uint8_t* plaintext, size_t n, uint8_t* ciphertext,
            uint8_t tag[kGcmTagSize]) const;

  // Verifies the tag and, on success, decrypts into `plaintext` (may alias)
  // and returns true. On tag mismatch returns false and leaves `plaintext`
  // unspecified.
  [[nodiscard]] bool Open(const uint8_t nonce[kGcmNonceSize], const uint8_t* aad,
                          size_t aad_len, const uint8_t* ciphertext, size_t n,
                          const uint8_t tag[kGcmTagSize], uint8_t* plaintext) const;

 private:
  struct U128 {
    uint64_t hi = 0;
    uint64_t lo = 0;
  };

  U128 GhashMul(const U128& x) const;
  void Ghash(const uint8_t* aad, size_t aad_len, const uint8_t* ct, size_t ct_len,
             uint8_t out[16]) const;
  void CtrCrypt(const uint8_t j0[16], const uint8_t* in, uint8_t* out, size_t n) const;

  Aes128 aes_;
  // Shoup's 4-bit table: htable_[i] = (i as 4-bit poly) * H in GF(2^128).
  U128 htable_[16];
};

}  // namespace eleos::crypto

#endif  // ELEOS_SRC_CRYPTO_GCM_H_
