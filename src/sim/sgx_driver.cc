// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/sim/sgx_driver.h"

#include <cstring>
#include <mutex>
#include <stdexcept>

#include "src/crypto/sha256.h"
#include "src/sim/enclave.h"
#include "src/sim/machine.h"

namespace eleos::sim {
namespace {

// AAD binds a sealed page to its owner and virtual page so sealed blobs
// cannot be swapped between pages (same scheme EWB uses via the VA slot).
struct SealAad {
  uint64_t enclave_id;
  uint64_t vpage;
};

// Synthetic untrusted vaddr for a page's sealed blob. Charging the blob's
// host heap address would make cache-set mapping (and therefore virtual
// cycles) depend on allocator layout, which varies run to run; vpage is
// globally unique across enclaves, so it doubles as a stable address.
constexpr uint64_t kSealedBlobVaddrBase = 1ull << 46;
inline uint64_t SealedBlobVaddr(uint64_t vpage) {
  return kSealedBlobVaddrBase + vpage * kPageSize;
}

// Synthetic untrusted vaddr for data-sealing blobs (sealed roots). Distinct
// from the per-page EWB range above and from SUVM's arena base (1ull << 47).
constexpr uint64_t kDataSealVaddrBase = 7ull << 44;

}  // namespace

SgxDriver::SgxDriver(Machine* machine)
    : machine_(machine),
      sealer_(crypto::DeriveAesKey("sgx-driver-ewb", 0x5117).data()),
      nonce_rng_(0xdead5eed) {}

EnclaveId SgxDriver::RegisterEnclave(Enclave* enclave) {
  std::lock_guard guard(lock_);
  const EnclaveId id = next_id_++;
  enclaves_[id].enclave = enclave;
  return id;
}

void SgxDriver::UnregisterEnclave(EnclaveId id) {
  std::lock_guard guard(lock_);
  auto it = enclaves_.find(id);
  if (it == enclaves_.end()) {
    return;
  }
  for (auto& [vpage, ps] : it->second.pages) {
    if (ps.frame != kInvalidFrame) {
      machine_->epc().Free(ps.frame);
    }
  }
  enclaves_.erase(it);
}

void SgxDriver::ReservePages(Enclave& enclave, uint64_t vpage, size_t count) {
  std::lock_guard guard(lock_);
  EnclaveRec& rec = enclaves_.at(enclave.id());
  rec.pages.reserve(rec.pages.size() + count);
  for (size_t i = 0; i < count; ++i) {
    rec.pages.try_emplace(vpage + i);
  }
}

void SgxDriver::ReleasePages(Enclave& enclave, uint64_t vpage, size_t count) {
  std::lock_guard guard(lock_);
  EnclaveRec& rec = enclaves_.at(enclave.id());
  for (size_t i = 0; i < count; ++i) {
    auto it = rec.pages.find(vpage + i);
    if (it == rec.pages.end()) {
      continue;
    }
    if (it->second.frame != kInvalidFrame) {
      machine_->epc().Free(it->second.frame);
      --rec.resident;
    }
    rec.pages.erase(it);
  }
}

bool SgxDriver::IsResident(const Enclave& enclave, uint64_t vpage) const {
  std::lock_guard guard(lock_);
  auto rit = enclaves_.find(enclave.id());
  if (rit == enclaves_.end()) {
    return false;
  }
  auto pit = rit->second.pages.find(vpage);
  return pit != rit->second.pages.end() && pit->second.frame != kInvalidFrame;
}

void SgxDriver::NoteTlbPresence(Enclave& enclave, uint64_t vpage, CpuContext& cpu) {
  std::lock_guard guard(lock_);
  EnclaveRec& rec = enclaves_.at(enclave.id());
  auto it = rec.pages.find(vpage);
  if (it != rec.pages.end() && cpu.id >= 0 && cpu.id < kMaxCpus) {
    it->second.tlb_stamp[static_cast<size_t>(cpu.id)] = cpu.tlb_epoch;
  }
}

size_t SgxDriver::AvailableFramesFor(EnclaveId /*id*/) const {
  // Today's driver splits PRM evenly among active enclaves (paper §4.1).
  const size_t n = enclaves_.empty() ? 1 : enclaves_.size();
  return machine_->epc().total_frames() / n;
}

void SgxDriver::ConfigureSwapper(size_t low_watermark, size_t batch) {
  swapper_low_watermark_ = low_watermark;
  swapper_batch_ = batch;
}

size_t SgxDriver::free_frames() const { return machine_->epc().free_frames(); }

uint8_t* SgxDriver::Touch(CpuContext* cpu, Enclave& enclave, uint64_t vpage,
                          bool /*write*/) {
  std::lock_guard guard(lock_);
  EnclaveRec& rec = enclaves_.at(enclave.id());
  auto it = rec.pages.find(vpage);
  if (it == rec.pages.end()) {
    throw std::out_of_range("SgxDriver::Touch: unreserved enclave page");
  }
  PageState& ps = it->second;
  if (ps.frame != kInvalidFrame) {
    ps.referenced = true;
    return machine_->epc().FrameData(ps.frame);
  }

  // --- Hardware EPC page fault ---
  ++stats_.faults;
  const CostModel& c = machine_->costs();
  SpanScope fault_span(&machine_->metrics().spans(), cpu, "sgx.fault");

  // The driver's asynchronous swapper may be evicting concurrently with the
  // enclave's execution; model it as a pre-fault batch so that IPIs hit the
  // still-inside faulting thread too (paper footnote 3: IPIs occur even for
  // single-threaded enclaves).
  RunSwapper(cpu);

  // The fault itself: AEX (exit cost + TLB flush) and kernel entry.
  machine_->ChargeCost(cpu, telemetry::CostCategory::kTransitions,
                       c.eexit_cycles);
  machine_->ChargeCost(cpu, telemetry::CostCategory::kSgxPaging,
                       c.fault_kernel_cycles);
  if (cpu != nullptr) {
    cpu->tlb.FlushAll();
    ++cpu->tlb_epoch;
  }

  const FrameId frame = ObtainFrame(cpu);
  // The map may have rehashed if eviction sealed pages; re-find.
  PageState& ps2 = rec.pages.at(vpage);
  ps2.frame = frame;
  ps2.referenced = true;
  ++rec.resident;
  resident_ring_.push_back({enclave.id(), vpage});

  uint8_t* data = machine_->epc().FrameData(frame);
  if (ps2.has_sealed) {
    UnsealPage(cpu, rec, vpage, ps2, data);
    ++stats_.page_ins;
    machine_->ChargeCost(cpu, telemetry::CostCategory::kSgxPaging,
                         c.driver_load_cycles);
  } else {
    ++stats_.zero_fills;
    machine_->ChargeCost(cpu, telemetry::CostCategory::kSgxPaging,
                         c.driver_zero_fill_cycles);
  }

  machine_->ChargeCost(cpu, telemetry::CostCategory::kTransitions,
                       c.eenter_cycles);  // ERESUME
  return data;
}

FrameId SgxDriver::ObtainFrame(CpuContext* cpu) {
  FrameId f = machine_->epc().Alloc();
  while (f == kInvalidFrame) {
    EnclaveId owner = 0;
    if (!EvictOne(cpu, &owner)) {
      throw std::runtime_error("SgxDriver: EPC exhausted and nothing evictable");
    }
    // Post-AEX eviction: the faulting thread has already exited; only other
    // in-enclave threads need the shootdown.
    EtrackSweep(cpu, owner, /*include_initiator=*/false);
    f = machine_->epc().Alloc();
  }
  return f;
}

void SgxDriver::RunSwapper(CpuContext* cpu) {
  if (machine_->epc().free_frames() >= swapper_low_watermark_) {
    return;
  }
  // One ETRACK round per owner enclave per batch, hitting every thread still
  // inside it — including the thread whose fault triggered us (the driver's
  // swapper runs asynchronously with enclave execution).
  EnclaveId owners[kMaxCpus * 4];
  size_t owner_count = 0;
  for (size_t i = 0; i < swapper_batch_; ++i) {
    EnclaveId owner = 0;
    if (!EvictOne(cpu, &owner)) {
      break;
    }
    bool seen = false;
    for (size_t j = 0; j < owner_count; ++j) {
      if (owners[j] == owner) {
        seen = true;
        break;
      }
    }
    if (!seen && owner_count < sizeof(owners) / sizeof(owners[0])) {
      owners[owner_count++] = owner;
    }
  }
  for (size_t j = 0; j < owner_count; ++j) {
    EtrackSweep(cpu, owners[j], /*include_initiator=*/true);
  }
}

bool SgxDriver::EvictOne(CpuContext* initiator, EnclaveId* owner_out) {
  size_t scanned = 0;
  const size_t limit = 2 * resident_ring_.size() + 4;
  while (!resident_ring_.empty() && scanned < limit) {
    if (clock_hand_ >= resident_ring_.size()) {
      clock_hand_ = 0;
    }
    const ResidentRef ref = resident_ring_[clock_hand_];
    auto rit = enclaves_.find(ref.enclave);
    PageState* ps = nullptr;
    if (rit != enclaves_.end()) {
      auto pit = rit->second.pages.find(ref.vpage);
      if (pit != rit->second.pages.end()) {
        ps = &pit->second;
      }
    }
    if (ps == nullptr || ps->frame == kInvalidFrame) {
      // Stale ring entry (page released or already evicted): drop lazily.
      resident_ring_[clock_hand_] = resident_ring_.back();
      resident_ring_.pop_back();
      continue;
    }
    if (ps->referenced) {
      ps->referenced = false;  // second chance
      ++clock_hand_;
      ++scanned;
      continue;
    }

    // Victim found: EWB (the caller runs the ETRACK round).
    SpanScope evict_span(&machine_->metrics().spans(), initiator, "sgx.evict");
    if (owner_out != nullptr) {
      *owner_out = ref.enclave;
    }
    SealPage(initiator, rit->second, ref.vpage, *ps);
    machine_->epc().Free(ps->frame);
    ps->frame = kInvalidFrame;
    --rit->second.resident;
    ++stats_.evictions;
    ++stats_.writebacks;  // EWB writes back unconditionally, even clean pages
    machine_->ChargeCost(initiator, telemetry::CostCategory::kSgxPaging,
                         machine_->costs().driver_evict_cycles);
    resident_ring_[clock_hand_] = resident_ring_.back();
    resident_ring_.pop_back();
    return true;
  }
  return false;
}

void SgxDriver::EtrackSweep(CpuContext* initiator, EnclaveId owner,
                            bool include_initiator) {
  auto rit = enclaves_.find(owner);
  if (rit == enclaves_.end()) {
    return;
  }
  const CostModel& c = machine_->costs();
  for (size_t i = 0; i < machine_->num_cpus() && i < kMaxCpus; ++i) {
    CpuContext& target = machine_->cpu(i);
    if (target.enclave != rit->second.enclave) {
      continue;
    }
    if (!include_initiator && &target == initiator) {
      continue;
    }
    ++stats_.ipis;
    ++stats_.shootdown_aexes;
    machine_->ChargeCost(initiator, telemetry::CostCategory::kSgxPaging,
                         c.ipi_cycles);
    // The receiving core is forced out of the enclave (AEX) and resumes.
    // The cycles land on the target's clock but are attributed to the
    // initiating thread's span — the shootdown is causally its fault's cost.
    machine_->ChargeCost(&target, telemetry::CostCategory::kTransitions,
                         c.shootdown_aex_cycles());
    target.tlb.FlushAll();
    ++target.tlb_epoch;
  }
}

void SgxDriver::SealPage(CpuContext* cpu, EnclaveRec& rec, uint64_t vpage,
                         PageState& ps) {
  if (!ps.sealed) {
    ps.sealed = std::make_unique<uint8_t[]>(kPageSize);
  }
  uint8_t* frame_data = machine_->epc().FrameData(ps.frame);
  if (seal_mode_ == SealMode::kReal) {
    nonce_rng_.FillBytes(ps.nonce, sizeof(ps.nonce));
    SealAad aad{rec.enclave->id(), vpage};
    sealer_.Seal(ps.nonce, reinterpret_cast<const uint8_t*>(&aad), sizeof(aad),
                 frame_data, kPageSize, ps.sealed.get(), ps.tag);
  } else {
    std::memcpy(ps.sealed.get(), frame_data, kPageSize);
  }
  ps.has_sealed = true;
  // Cache effects of the copy-out: read the EPC frame, write the blob.
  machine_->StreamAccess(cpu, vpage * kPageSize, kPageSize, /*write=*/false,
                         MemKind::kEpc);
  machine_->StreamAccess(cpu, SealedBlobVaddr(vpage), kPageSize,
                         /*write=*/true, MemKind::kUntrusted);
}

SgxDriver::SealedBlob SgxDriver::SealBlob(CpuContext* cpu, Enclave& enclave,
                                          const uint8_t* data, size_t len) {
  SealedBlob blob;
  blob.ciphertext.resize(len);
  // Bind the enclave *name*, not its id: a restarted instance has a fresh id
  // but the same identity, exactly like MRENCLAVE-keyed sealing.
  const auto aad = crypto::Sha256::Digest(enclave.name().data(),
                                          enclave.name().size());
  if (seal_mode_ == SealMode::kReal) {
    {
      std::lock_guard guard(lock_);
      nonce_rng_.FillBytes(blob.nonce, sizeof(blob.nonce));
    }
    sealer_.Seal(blob.nonce, aad.data(), aad.size(), data, len,
                 blob.ciphertext.data(), blob.tag);
  } else {
    std::memcpy(blob.ciphertext.data(), data, len);
    blob.fast = true;
  }
  enclave.ChargeGcm(cpu, len);
  machine_->StreamAccess(cpu, kDataSealVaddrBase, len, /*write=*/true,
                         MemKind::kUntrusted);
  return blob;
}

bool SgxDriver::UnsealBlob(CpuContext* cpu, Enclave& enclave,
                           const SealedBlob& blob, std::vector<uint8_t>* out) {
  out->resize(blob.ciphertext.size());
  enclave.ChargeGcm(cpu, blob.ciphertext.size());
  machine_->StreamAccess(cpu, kDataSealVaddrBase, blob.ciphertext.size(),
                         /*write=*/false, MemKind::kUntrusted);
  if (blob.fast != (seal_mode_ == SealMode::kFast)) {
    return false;  // seal-mode mismatch: the blob cannot be authenticated
  }
  if (seal_mode_ == SealMode::kFast) {
    std::memcpy(out->data(), blob.ciphertext.data(), blob.ciphertext.size());
    return true;
  }
  const auto aad = crypto::Sha256::Digest(enclave.name().data(),
                                          enclave.name().size());
  return sealer_.Open(blob.nonce, aad.data(), aad.size(),
                      blob.ciphertext.data(), blob.ciphertext.size(), blob.tag,
                      out->data());
}

uint64_t SgxDriver::BumpMonotonicCounter() {
  std::lock_guard guard(lock_);
  return ++monotonic_counter_;
}

uint64_t SgxDriver::monotonic_counter() const {
  std::lock_guard guard(lock_);
  return monotonic_counter_;
}

void SgxDriver::UnsealPage(CpuContext* cpu, EnclaveRec& rec, uint64_t vpage,
                           PageState& ps, uint8_t* frame_data) {
  if (seal_mode_ == SealMode::kReal) {
    SealAad aad{rec.enclave->id(), vpage};
    const bool ok = sealer_.Open(ps.nonce, reinterpret_cast<const uint8_t*>(&aad),
                                 sizeof(aad), ps.sealed.get(), kPageSize, ps.tag,
                                 frame_data);
    if (!ok) {
      throw std::runtime_error(
          "SgxDriver: integrity check failed on EPC page reload (tampered "
          "backing memory?)");
    }
  } else {
    std::memcpy(frame_data, ps.sealed.get(), kPageSize);
  }
  machine_->StreamAccess(cpu, SealedBlobVaddr(vpage), kPageSize,
                         /*write=*/false, MemKind::kUntrusted);
  machine_->StreamAccess(cpu, vpage * kPageSize, kPageSize, /*write=*/true,
                         MemKind::kEpc);
}

}  // namespace eleos::sim
