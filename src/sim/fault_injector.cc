// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/sim/fault_injector.h"

#include <mutex>

namespace eleos::sim {

FaultInjector::FaultInjector(uint64_t seed) : rng_(seed ^ 0xfa017c0de5ull) {}

void FaultInjector::ArmLocked(Fault fault, double probability,
                              uint64_t max_triggers) {
  Point& p = points_[Index(fault)];
  p.probability = probability;
  p.triggers_left = max_triggers;
  p.armed.store(probability > 0.0 && max_triggers > 0,
                std::memory_order_release);
}

void FaultInjector::DisarmLocked(Fault fault) {
  Point& p = points_[Index(fault)];
  p.armed.store(false, std::memory_order_release);
  p.probability = 0.0;
  p.triggers_left = 0;
}

void FaultInjector::Arm(Fault fault, double probability, uint64_t max_triggers) {
  std::lock_guard guard(lock_);
  ArmLocked(fault, probability, max_triggers);
}

void FaultInjector::Disarm(Fault fault) {
  std::lock_guard guard(lock_);
  DisarmLocked(fault);
}

void FaultInjector::DisarmAll() {
  for (size_t i = 0; i < static_cast<size_t>(Fault::kCount); ++i) {
    Disarm(static_cast<Fault>(i));
  }
}

bool FaultInjector::ShouldInject(Fault fault) {
  Point& p = points_[Index(fault)];
  if (!p.armed.load(std::memory_order_relaxed)) {
    return false;  // fast path: benign host
  }
  p.checks.Inc();
  std::lock_guard guard(lock_);
  if (p.triggers_left == 0) {
    p.armed.store(false, std::memory_order_release);
    return false;
  }
  const bool hit = p.probability >= 1.0 || rng_.NextDouble() < p.probability;
  if (!hit) {
    return false;
  }
  if (--p.triggers_left == 0) {
    p.armed.store(false, std::memory_order_release);
  }
  p.injected.Inc();
  return true;
}

void FaultInjector::LoadSchedule(std::vector<FaultPhase> schedule) {
  std::lock_guard guard(lock_);
  for (PhaseState& ps : schedule_) {
    if (ps.active) {
      DisarmLocked(ps.phase.fault);
    }
  }
  schedule_.clear();
  schedule_.reserve(schedule.size());
  for (const FaultPhase& phase : schedule) {
    schedule_.push_back({phase, /*active=*/false, phase.max_triggers});
  }
}

void FaultInjector::ClearSchedule() { LoadSchedule({}); }

void FaultInjector::AdvanceTime(uint64_t tick) {
  std::lock_guard guard(lock_);
  constexpr size_t kFaults = static_cast<size_t>(Fault::kCount);
  // Per fault, the winning in-window phase is the LAST one in schedule order.
  // Overlapping windows of the same fault therefore form a union: the fault
  // stays armed while any window covers the tick, a burst window overrides a
  // longer background window for its duration, and the background window
  // resumes (with its banked budget) once the burst ends.
  PhaseState* winner[kFaults] = {};
  for (PhaseState& ps : schedule_) {
    if (ps.phase.start_tick <= tick && tick < ps.phase.end_tick) {
      winner[Index(ps.phase.fault)] = &ps;
    }
  }
  // Deactivate losers first, banking their remaining budget. At most one
  // phase per fault is ever active, so the live Point budget belongs to it.
  bool handed_off[kFaults] = {};
  for (PhaseState& ps : schedule_) {
    const size_t f = Index(ps.phase.fault);
    if (ps.active && winner[f] != &ps) {
      ps.triggers_left = points_[f].triggers_left;
      ps.active = false;
      handed_off[f] = true;
    }
  }
  // Arm new winners with their banked budget. Disarm a fault only when one of
  // its phases just stepped down and nothing else claims the tick — a fault
  // armed manually (no schedule entry) is never touched here.
  for (size_t f = 0; f < kFaults; ++f) {
    PhaseState* w = winner[f];
    if (w != nullptr) {
      if (!w->active) {
        ArmLocked(w->phase.fault, w->phase.probability, w->triggers_left);
        w->active = true;
      }
    } else if (handed_off[f]) {
      DisarmLocked(static_cast<Fault>(f));
    }
  }
}

size_t FaultInjector::active_phases() const {
  std::lock_guard guard(lock_);
  size_t n = 0;
  for (const PhaseState& ps : schedule_) {
    n += ps.active ? 1 : 0;
  }
  return n;
}

size_t FaultInjector::schedule_size() const {
  std::lock_guard guard(lock_);
  return schedule_.size();
}

uint64_t FaultInjector::total_injected() const {
  uint64_t total = 0;
  for (const Point& p : points_) {
    total += p.injected.value();
  }
  return total;
}

void FaultInjector::ResetCounters() {
  for (Point& p : points_) {
    p.checks.Reset();
    p.injected.Reset();
  }
}

}  // namespace eleos::sim
