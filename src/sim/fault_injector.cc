// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/sim/fault_injector.h"

#include <mutex>

namespace eleos::sim {

FaultInjector::FaultInjector(uint64_t seed) : rng_(seed ^ 0xfa017c0de5ull) {}

void FaultInjector::Arm(Fault fault, double probability, uint64_t max_triggers) {
  Point& p = points_[Index(fault)];
  std::lock_guard guard(lock_);
  p.probability = probability;
  p.triggers_left = max_triggers;
  p.armed.store(probability > 0.0 && max_triggers > 0,
                std::memory_order_release);
}

void FaultInjector::Disarm(Fault fault) {
  Point& p = points_[Index(fault)];
  std::lock_guard guard(lock_);
  p.armed.store(false, std::memory_order_release);
  p.probability = 0.0;
  p.triggers_left = 0;
}

void FaultInjector::DisarmAll() {
  for (size_t i = 0; i < static_cast<size_t>(Fault::kCount); ++i) {
    Disarm(static_cast<Fault>(i));
  }
}

bool FaultInjector::ShouldInject(Fault fault) {
  Point& p = points_[Index(fault)];
  if (!p.armed.load(std::memory_order_relaxed)) {
    return false;  // fast path: benign host
  }
  p.checks.Inc();
  std::lock_guard guard(lock_);
  if (p.triggers_left == 0) {
    p.armed.store(false, std::memory_order_release);
    return false;
  }
  const bool hit = p.probability >= 1.0 || rng_.NextDouble() < p.probability;
  if (!hit) {
    return false;
  }
  if (--p.triggers_left == 0) {
    p.armed.store(false, std::memory_order_release);
  }
  p.injected.Inc();
  return true;
}

uint64_t FaultInjector::total_injected() const {
  uint64_t total = 0;
  for (const Point& p : points_) {
    total += p.injected.value();
  }
  return total;
}

void FaultInjector::ResetCounters() {
  for (Point& p : points_) {
    p.checks.Reset();
    p.injected.Reset();
  }
}

}  // namespace eleos::sim
