// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/sim/enclave.h"

namespace eleos::sim {
namespace {
constexpr uint64_t kVaddrStride = 1ull << 40;
}  // namespace

Enclave::Enclave(Machine& machine, std::string name)
    : machine_(&machine), name_(std::move(name)) {
  id_ = machine_->driver().RegisterEnclave(this);
  vaddr_base_ = (static_cast<uint64_t>(id_) + 1) * kVaddrStride;
}

Enclave::~Enclave() { machine_->driver().UnregisterEnclave(id_); }

uint64_t Enclave::Alloc(size_t bytes) {
  const size_t pages = (bytes + kPageSize - 1) / kPageSize;
  const uint64_t vaddr = vaddr_base_ + bump_;
  bump_ += pages * kPageSize;
  machine_->driver().ReservePages(*this, vaddr / kPageSize, pages);
  reserved_pages_ += pages;
  return vaddr;
}

void Enclave::Free(uint64_t vaddr, size_t bytes) {
  const size_t pages = (bytes + kPageSize - 1) / kPageSize;
  machine_->driver().ReleasePages(*this, vaddr / kPageSize, pages);
  reserved_pages_ -= pages;
}

uint8_t* Enclave::Data(CpuContext* cpu, uint64_t vaddr, size_t len, bool write) {
  const uint64_t vpage = vaddr / kPageSize;
  const size_t offset = vaddr % kPageSize;
  assert(offset + len <= kPageSize && "Data() must not cross a page boundary");
  uint8_t* frame = machine_->driver().Touch(cpu, *this, vpage, write);
  machine_->Access(cpu, vaddr, len, write, MemKind::kEpc);
  if (cpu != nullptr) {
    machine_->driver().NoteTlbPresence(*this, vpage, *cpu);
  }
  return frame + offset;
}

void Enclave::Read(CpuContext* cpu, uint64_t vaddr, void* dst, size_t len) {
  auto* out = static_cast<uint8_t*>(dst);
  while (len > 0) {
    const size_t in_page = kPageSize - (vaddr % kPageSize);
    const size_t chunk = len < in_page ? len : in_page;
    const uint8_t* src = Data(cpu, vaddr, chunk, /*write=*/false);
    std::memcpy(out, src, chunk);
    out += chunk;
    vaddr += chunk;
    len -= chunk;
  }
}

void Enclave::Write(CpuContext* cpu, uint64_t vaddr, const void* src, size_t len) {
  const auto* in = static_cast<const uint8_t*>(src);
  while (len > 0) {
    const size_t in_page = kPageSize - (vaddr % kPageSize);
    const size_t chunk = len < in_page ? len : in_page;
    uint8_t* dst = Data(cpu, vaddr, chunk, /*write=*/true);
    std::memcpy(dst, in, chunk);
    in += chunk;
    vaddr += chunk;
    len -= chunk;
  }
}

void Enclave::Enter(CpuContext& cpu) {
  SpanScope span(&machine_->metrics().spans(), &cpu, "enclave.enter");
  machine_->ChargeCost(&cpu, telemetry::CostCategory::kTransitions,
                       machine_->costs().eenter_cycles);
  cpu.enclave = this;
  ++threads_inside_;
}

void Enclave::Exit(CpuContext& cpu) {
  SpanScope span(&machine_->metrics().spans(), &cpu, "enclave.exit");
  machine_->ChargeCost(&cpu, telemetry::CostCategory::kTransitions,
                       machine_->costs().eexit_cycles);
  cpu.tlb.FlushAll();
  ++cpu.tlb_epoch;
  cpu.enclave = nullptr;
  --threads_inside_;
}

void Enclave::ChargeGcm(CpuContext* cpu, size_t bytes) {
  const CostModel& c = machine_->costs();
  const uint64_t cycles =
      c.aes_gcm_setup_cycles +
      static_cast<uint64_t>(c.aes_gcm_cycles_per_byte *
                            static_cast<double>(bytes));
  machine_->ChargeCost(cpu, telemetry::CostCategory::kCrypto, cycles);
}

void Enclave::ChargeCtr(CpuContext* cpu, size_t bytes) {
  const CostModel& c = machine_->costs();
  const uint64_t cycles = static_cast<uint64_t>(
      c.aes_ctr_cycles_per_byte * static_cast<double>(bytes));
  machine_->ChargeCost(cpu, telemetry::CostCategory::kCrypto, cycles);
}

}  // namespace eleos::sim
