// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/sim/cache_model.h"

#include <cmath>

namespace eleos::sim {

CacheModel::CacheModel(const CostModel& costs)
    : costs_(costs),
      ways_(costs.llc_ways),
      sets_(costs.llc_bytes / (costs.llc_line * costs.llc_ways)),
      lines_(sets_ * ways_),
      mee_pages_(costs.mee_tree_cache_pages, UINT64_MAX),
      mee_used_(costs.mee_tree_cache_pages, 0) {
  const uint64_t all = (ways_ >= 64) ? ~0ull : ((1ull << ways_) - 1);
  for (int i = 0; i < kNumCos; ++i) {
    way_mask_[i] = all;
  }
}

void CacheModel::SetWayMask(int cos, uint64_t mask) {
  if (cos >= 0 && cos < kNumCos && mask != 0) {
    way_mask_[cos] = mask;
  }
}

void CacheModel::EnablePartitioning(double enclave_fraction) {
  const size_t enclave_ways =
      static_cast<size_t>(std::lround(enclave_fraction * static_cast<double>(ways_)));
  const size_t clamped = enclave_ways == 0 ? 1 : (enclave_ways >= ways_ ? ways_ - 1 : enclave_ways);
  const uint64_t enclave_mask = (1ull << clamped) - 1;
  const uint64_t all = (ways_ >= 64) ? ~0ull : ((1ull << ways_) - 1);
  SetWayMask(kCosEnclave, enclave_mask);
  SetWayMask(kCosRpcWorker, all & ~enclave_mask);
}

void CacheModel::DisablePartitioning() {
  const uint64_t all = (ways_ >= 64) ? ~0ull : ((1ull << ways_) - 1);
  for (int i = 0; i < kNumCos; ++i) {
    way_mask_[i] = all;
  }
}

bool CacheModel::MeeTreeAccess(uint64_t page) {
  ++mee_tick_;
  size_t victim = 0;
  uint64_t oldest = UINT64_MAX;
  for (size_t i = 0; i < mee_pages_.size(); ++i) {
    if (mee_pages_[i] == page) {
      mee_used_[i] = mee_tick_;
      return true;
    }
    if (mee_used_[i] < oldest) {
      oldest = mee_used_[i];
      victim = i;
    }
  }
  mee_pages_[victim] = page;
  mee_used_[victim] = mee_tick_;
  return false;
}

uint64_t CacheModel::Access(uint64_t line_addr, bool write, MemKind kind, int cos) {
  std::lock_guard guard(lock_);
  const size_t set = static_cast<size_t>(line_addr) % sets_;
  const uint64_t tag = line_addr / sets_;
  Line* base = &lines_[set * ways_];
  ++tick_;

  // Lookup: all ways, regardless of CAT mask.
  for (size_t w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].last_used = tick_;
      ++hits_;
      // Rough split: treat a fraction of hits as L1-served. The model has no
      // L1, so every 4th access pays the LLC-hit latency, the rest L1.
      return (tick_ & 3) == 0 ? costs_.llc_hit_cycles : costs_.l1_hit_cycles;
    }
  }
  ++misses_;

  // Fill: restricted to the CAT mask of this class of service.
  const uint64_t mask = (cos >= 0 && cos < kNumCos) ? way_mask_[cos] : way_mask_[0];
  size_t victim = ways_;  // invalid
  uint64_t oldest = UINT64_MAX;
  for (size_t w = 0; w < ways_; ++w) {
    if ((mask & (1ull << w)) == 0) {
      continue;
    }
    if (!base[w].valid) {
      victim = w;
      break;
    }
    if (base[w].last_used < oldest) {
      oldest = base[w].last_used;
      victim = w;
    }
  }
  if (victim < ways_) {
    base[victim] = {tag, tick_, true};
  }

  if (kind == MemKind::kUntrusted) {
    return costs_.llc_miss_cycles;
  }
  // EPC miss: the MEE decrypts the line and walks the integrity tree.
  double factor;
  if (write) {
    const bool tree_hit = MeeTreeAccess(line_addr >> 6);  // line -> page
    factor = tree_hit ? costs_.epc_miss_write_factor_tree_hit
                      : costs_.epc_miss_write_factor_tree_miss;
  } else {
    factor = costs_.epc_miss_read_factor;
  }
  return static_cast<uint64_t>(static_cast<double>(costs_.llc_miss_cycles) * factor);
}

void CacheModel::ResetStats() {
  std::lock_guard guard(lock_);
  hits_ = 0;
  misses_ = 0;
}

}  // namespace eleos::sim
