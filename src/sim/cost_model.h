// Copyright (c) Eleos reproduction authors. MIT license.
//
// All calibrated virtual-cycle constants of the SGX simulation, in one place.
//
// Values come from the paper's own measurements on Skylake i7-6700 (§2.2,
// §2.3, §6.1.2, Table 1) and standard Skylake latencies. Benchmarks may tweak
// individual fields (every component takes the model by reference from the
// Machine), but the defaults regenerate the paper's numbers.

#ifndef ELEOS_SRC_SIM_COST_MODEL_H_
#define ELEOS_SRC_SIM_COST_MODEL_H_

#include <cstddef>
#include <cstdint>

namespace eleos::sim {

struct CostModel {
  // --- Enclave transitions (paper §2.2) ---
  uint64_t eenter_cycles = 3800;       // EENTER / ERESUME
  uint64_t eexit_cycles = 3300;        // EEXIT / AEX
  uint64_t ocall_sdk_cycles = 800;     // SDK marshalling on top of the raw exits
  uint64_t syscall_cycles = 250;       // plain kernel syscall (FlexSC)
  uint64_t fault_kernel_cycles = 1000; // #PF trap + kernel entry to the SGX driver

  // --- Memory hierarchy ---
  uint64_t l1_hit_cycles = 4;            // per cache line touched
  uint64_t llc_hit_cycles = 40;          // L1 miss, LLC hit
  uint64_t llc_miss_cycles = 200;        // LLC miss to untrusted DRAM
  // EPC misses go through the Memory Encryption Engine: decrypt + integrity
  // tree walk. Factors from Table 1. Writes that miss the MEE tree-node cache
  // (random pattern) pay more than sequential ones.
  double epc_miss_read_factor = 5.6;
  double epc_miss_write_factor_tree_hit = 6.8;
  double epc_miss_write_factor_tree_miss = 8.9;

  // Streaming (sequential bulk-copy) accesses: hardware prefetch hides most
  // of the miss latency, so page copies charge a flat per-line cost instead
  // of the random-miss cost. Used by the paging paths (EWB/ELDU and SUVM
  // page moves).
  uint64_t stream_line_cycles = 15;      // untrusted line, streamed
  uint64_t stream_epc_line_cycles = 30;  // EPC line, streamed (MEE pipelined)

  // --- TLB ---
  uint64_t tlb_walk_cycles = 100;      // page walk, untrusted page
  uint64_t tlb_walk_epc_cycles = 150;  // page walk touching EPC-resident tables

  // --- SGX driver paging (paper §2.3) ---
  uint64_t driver_evict_cycles = 12000;  // EWB path for one page, excl. exits
  uint64_t driver_load_cycles = 13000;   // ELDU path (evict+load measured ~25k)
  uint64_t driver_zero_fill_cycles = 3000;  // first touch of a never-sealed page
  uint64_t ipi_cycles = 1500;               // sending one shootdown IPI
  // A core receiving a shootdown IPI while in-enclave is forced through AEX
  // and later resumes; that cost lands on the *victim* thread.
  uint64_t shootdown_aex_cycles() const { return eexit_cycles + eenter_cycles; }

  // --- In-enclave crypto (AES-NI rates; paper's SUVM pages in at ~8.5k
  //     cycles for 4 KiB: ~1.3 cyc/B of AES-GCM + copies + table lookups) ---
  double aes_gcm_cycles_per_byte = 0.9;  // Skylake AES-NI + PCLMUL GCM
  uint64_t aes_gcm_setup_cycles = 1000;  // per sealed record (key/IV setup, tag,
                                         // nonce generation, metadata update)
  double aes_ctr_cycles_per_byte = 0.65;

  // --- SUVM software paging ---
  uint64_t suvm_deref_check_cycles = 2;   // spointer bounds/translation check
  uint64_t suvm_fault_logic_cycles = 300; // page-table manipulation per fault
  // Inverse-page-table lookup/refcount update: "this small page table has an
  // entry for every EPC++ page" — it stays L1/L2-resident, so a pin costs a
  // handful of cycles rather than a modeled LLC round-trip.
  uint64_t suvm_pt_lookup_cycles = 6;

  // --- RPC (Eleos exit-less syscalls) ---
  uint64_t rpc_enqueue_cycles = 150;   // write job into the untrusted queue
  uint64_t rpc_dequeue_cycles = 150;   // read result back
  uint64_t rpc_poll_latency_cycles = 400;  // average wakeup latency of a spinning worker
  // Virtual-cycle cost of one wasted polling spin (a PAUSE plus the loop
  // around it). Charged only on the *timeout* paths — a successful wait's
  // duration depends on wall-clock scheduling and must not perturb the
  // deterministic accounting — so a burned spin budget shows up in the
  // latency numbers exactly when the host really withheld progress.
  uint64_t rpc_spin_cycles = 4;

  // --- Application compute (virtual-cycle charges for real work the apps
  //     perform; calibrated so the servers' compute/IO balance matches §6) ---
  uint64_t hash_op_cycles = 60;        // hash + bookkeeping per KVS operation
  double lbp_cycles_per_pixel = 1.5;   // LBP code + histogram update (SIMD)
  double histcmp_cycles_per_byte = 0.2;   // chi-square comparison

  // --- Platform ---
  double cpu_ghz = 3.4;                  // i7-6700
  size_t llc_bytes = 8ull << 20;         // 8 MiB
  size_t llc_ways = 16;
  size_t llc_line = 64;
  size_t mee_tree_cache_pages = 64;      // modeled MEE integrity-tree node cache

  // PRM: 128 MiB total, ~90 MiB usable for application EPC pages (§2.3).
  size_t prm_total_frames = (128ull << 20) / 4096;
  size_t prm_usable_frames = (90ull << 20) / 4096;

  // --- Network (§6 setup: dedicated 10 Gb/s link) ---
  double network_gbps = 10.0;
  uint64_t network_per_msg_cycles = 7000;  // ~2 us NIC+stack latency at 3.4 GHz
  size_t syscall_kernel_footprint = 2048;  // kernel-buffer bytes an I/O syscall touches

  // Cycles for one message of `bytes` on the wire.
  uint64_t WireCycles(size_t bytes) const {
    const double seconds = static_cast<double>(bytes) * 8.0 / (network_gbps * 1e9);
    return network_per_msg_cycles + static_cast<uint64_t>(seconds * cpu_ghz * 1e9);
  }

  // Convenience conversions.
  double CyclesToSeconds(uint64_t cycles) const {
    return static_cast<double>(cycles) / (cpu_ghz * 1e9);
  }
  double OpsPerSecond(uint64_t ops, uint64_t cycles) const {
    if (cycles == 0) {
      return 0.0;
    }
    return static_cast<double>(ops) / CyclesToSeconds(cycles);
  }
};

}  // namespace eleos::sim

#endif  // ELEOS_SRC_SIM_COST_MODEL_H_
