// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/sim/vclock.h"

#include "src/telemetry/span.h"

namespace eleos::sim {

namespace {
thread_local CpuContext* g_current_cpu = nullptr;
}  // namespace

CpuContext* CurrentCpu() { return g_current_cpu; }

void BindCpu(CpuContext* cpu) { g_current_cpu = cpu; }

SpanScope::SpanScope(telemetry::SpanTracer* spans, CpuContext* cpu,
                     const char* name)
    : spans_(spans), cpu_(cpu) {
  if (spans_ == nullptr || cpu_ == nullptr || !spans_->enabled()) {
    return;
  }
  id_ = spans_->BeginSpan(name, cpu_->clock.now(), cpu_->id);
}

SpanScope::~SpanScope() {
  // Only close what we opened: if BeginSpan returned 0 (tracer disabled at
  // entry) there is nothing on the stack for this scope.
  if (id_ != 0) {
    spans_->EndSpan(cpu_->clock.now());
  }
}

}  // namespace eleos::sim
