// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/sim/vclock.h"

namespace eleos::sim {

namespace {
thread_local CpuContext* g_current_cpu = nullptr;
}  // namespace

CpuContext* CurrentCpu() { return g_current_cpu; }

void BindCpu(CpuContext* cpu) { g_current_cpu = cpu; }

}  // namespace eleos::sim
