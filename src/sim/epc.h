// Copyright (c) Eleos reproduction authors. MIT license.
//
// The Enclave Page Cache: a fixed pool of 4 KiB frames inside the processor
// reserved memory (PRM).
//
// Real hardware reserves 128 MiB of PRM of which ~90 MiB is usable for
// application pages; the remainder holds the EPCM and version arrays (§2.3).
// The simulator backs the usable frames with one large allocation and hands
// out frame ids; frame *contents* are real bytes so eviction/reload and the
// crypto around them can be tested end to end.

#ifndef ELEOS_SRC_SIM_EPC_H_
#define ELEOS_SRC_SIM_EPC_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace eleos::sim {

inline constexpr size_t kPageSize = 4096;
inline constexpr uint32_t kInvalidFrame = UINT32_MAX;

using FrameId = uint32_t;

class Epc {
 public:
  explicit Epc(size_t usable_frames);

  Epc(const Epc&) = delete;
  Epc& operator=(const Epc&) = delete;

  // Allocates a frame, or returns kInvalidFrame when the EPC is full (the
  // caller — the SGX driver — must then evict).
  FrameId Alloc();
  void Free(FrameId frame);

  uint8_t* FrameData(FrameId frame) {
    return storage_.get() + static_cast<size_t>(frame) * kPageSize;
  }
  const uint8_t* FrameData(FrameId frame) const {
    return storage_.get() + static_cast<size_t>(frame) * kPageSize;
  }

  size_t total_frames() const { return total_frames_; }
  size_t free_frames() const { return free_list_.size(); }
  size_t used_frames() const { return total_frames_ - free_list_.size(); }

 private:
  size_t total_frames_;
  std::unique_ptr<uint8_t[]> storage_;
  std::vector<FrameId> free_list_;
};

}  // namespace eleos::sim

#endif  // ELEOS_SRC_SIM_EPC_H_
