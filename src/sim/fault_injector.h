// Copyright (c) Eleos reproduction authors. MIT license.
//
// Hostile-host fault injection (deterministic, seed-driven).
//
// Eleos runs OS services through untrusted memory and untrusted worker
// threads, so the host can stall or kill workers, drop completions, exert
// queue-full backpressure, tamper with or roll back backing-store ciphertext,
// and fail allocations. The FaultInjector is the single switchboard for all
// of those behaviours: each injection point is armed with a probability and a
// trigger budget, rolls a dedicated seeded RNG, and counts both checks and
// injections so tests can assert exactly what fired. Disarmed points cost one
// relaxed atomic load — the default (nothing armed) leaves every workload
// byte-identical to a benign host.

#ifndef ELEOS_SRC_SIM_FAULT_INJECTOR_H_
#define ELEOS_SRC_SIM_FAULT_INJECTOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/spinlock.h"
#include "src/common/stats.h"

namespace eleos::sim {

enum class Fault : size_t {
  // RPC layer (untrusted workers / shared job queue).
  kWorkerStall = 0,    // worker pauses mid-job (preempted / malicious delay)
  kWorkerDeath = 1,    // worker thread silently exits
  kCompletionDrop = 2, // job runs but its completion is never published
  kQueueFull = 3,      // submitter sees artificial queue-full backpressure
  // SUVM / backing store (untrusted ciphertext arena).
  kCiphertextFlip = 4, // bit-flip in the sealed page before decryption
  kRollback = 5,       // host replays a stale-but-once-valid sealed page
  kBackingAllocFail = 6,  // host refuses to grow the backing arena
  // Inter-enclave secure channel (untrusted message ring).
  kChannelTamper = 7,  // bit-flip in a sealed message before the receiver opens it
  // Crash consistency (journaled backing store).
  kHostCrash = 8,   // host process dies mid-operation; enclave state is lost
  kTornWrite = 9,   // the write in flight at the crash lands partially
  // RPC layer, continued (appended to keep earlier fault ids stable).
  kWorkerDeathWithClaim = 10,  // worker dies between claiming and completing
  // Untrusted-memory boundary (TOCTOU / Iago adversaries, DESIGN.md §12).
  kSharedMemScribbler = 11,  // concurrent thread flips bytes in live shared state
  kIagoReturn = 12,          // host syscall returns out-of-range sizes/statuses
  kCount = 13,
};

inline const char* FaultName(Fault f) {
  switch (f) {
    case Fault::kWorkerStall: return "worker_stall";
    case Fault::kWorkerDeath: return "worker_death";
    case Fault::kCompletionDrop: return "completion_drop";
    case Fault::kQueueFull: return "queue_full";
    case Fault::kCiphertextFlip: return "ciphertext_flip";
    case Fault::kRollback: return "rollback";
    case Fault::kBackingAllocFail: return "backing_alloc_fail";
    case Fault::kChannelTamper: return "channel_tamper";
    case Fault::kHostCrash: return "host_crash";
    case Fault::kTornWrite: return "torn_write";
    case Fault::kWorkerDeathWithClaim: return "worker_death_with_claim";
    case Fault::kSharedMemScribbler: return "shared_mem_scribbler";
    case Fault::kIagoReturn: return "iago_return";
    case Fault::kCount: break;
  }
  return "unknown";
}

// One window of a fault schedule: `fault` is armed with `probability` and
// (the remainder of) `max_triggers` while virtual time t satisfies
// start_tick <= t < end_tick. The trigger budget is a property of the phase,
// not the window: a phase that deactivates and later reactivates resumes
// with whatever budget it had left. Phases of the same fault may overlap:
// the windows form a union (the fault is armed iff some window contains the
// tick), and while several windows cover the same tick the LAST one in
// schedule order supplies the probability and budget — so a short burst
// phase overrides a long background phase, which resumes when the burst
// window closes.
struct FaultPhase {
  Fault fault = Fault::kWorkerStall;
  double probability = 1.0;
  uint64_t max_triggers = UINT64_MAX;
  uint64_t start_tick = 0;
  uint64_t end_tick = UINT64_MAX;  // half-open [start_tick, end_tick)
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0xfa17);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Arms `fault` to fire with `probability` per check, at most `max_triggers`
  // times. probability >= 1.0 fires on every check until the budget runs out.
  void Arm(Fault fault, double probability, uint64_t max_triggers = UINT64_MAX);
  void Disarm(Fault fault);
  void DisarmAll();

  // --- Virtual-time multi-fault schedule ---
  // Installs a schedule of overlapping fault windows driven by an external
  // virtual clock (the soak harness's round counter, a workload's op count —
  // any monotonic tick the caller owns). Replaces any previous schedule and
  // disarms its faults; manually Arm()ed faults not named by any phase are
  // left alone. Nothing is armed until the first AdvanceTime call.
  void LoadSchedule(std::vector<FaultPhase> schedule);
  // Deactivates and clears the schedule (scheduled faults are disarmed).
  void ClearSchedule();
  // Moves the schedule clock to `tick` (need not be monotonic): each fault is
  // armed iff some phase window contains `tick`, using the winning phase's
  // probability and remaining trigger budget (see FaultPhase on overlap);
  // phases that step down have their budget saved for a later window.
  // Deterministic given (seed, schedule, tick sequence).
  void AdvanceTime(uint64_t tick);
  // Number of schedule phases currently armed (after the last AdvanceTime).
  size_t active_phases() const;
  size_t schedule_size() const;

  // Rolls the dice at an injection point. Counts the check; on a hit, counts
  // the injection and consumes one trigger. Thread-safe.
  bool ShouldInject(Fault fault);

  // Cheap armed-ness probe for code that must do extra bookkeeping (e.g.
  // stashing stale seals for rollback replay) only while a point is live.
  bool armed(Fault fault) const {
    return points_[Index(fault)].armed.load(std::memory_order_relaxed);
  }

  uint64_t checks(Fault fault) const { return points_[Index(fault)].checks.value(); }
  uint64_t injected(Fault fault) const {
    return points_[Index(fault)].injected.value();
  }
  uint64_t total_injected() const;
  void ResetCounters();

  // How long an injected kWorkerStall pauses the worker, in CpuRelax spins
  // (virtual "cycles" of the polling loop — the worker holds its claimed slot
  // the whole time, so the submitter's spin budget is what bounds the damage).
  void set_worker_stall_spins(uint64_t spins) {
    worker_stall_spins_.store(spins, std::memory_order_relaxed);
  }
  uint64_t worker_stall_spins() const {
    return worker_stall_spins_.load(std::memory_order_relaxed);
  }

 private:
  static size_t Index(Fault f) { return static_cast<size_t>(f); }

  void ArmLocked(Fault fault, double probability, uint64_t max_triggers);
  void DisarmLocked(Fault fault);

  struct Point {
    std::atomic<bool> armed{false};
    double probability = 0.0;          // guarded by lock
    uint64_t triggers_left = 0;        // guarded by lock
    Counter checks;
    Counter injected;
  };

  struct PhaseState {
    FaultPhase phase;
    bool active = false;
    uint64_t triggers_left = 0;  // remaining budget while inactive
  };

  Point points_[static_cast<size_t>(Fault::kCount)];
  std::atomic<uint64_t> worker_stall_spins_{1ull << 22};
  mutable Spinlock lock_;  // serializes the RNG, arm/disarm and schedule state
  Xoshiro256 rng_;
  std::vector<PhaseState> schedule_;  // guarded by lock_
};

// A REAL hostile host thread: while kSharedMemScribbler is armed it invokes
// `target` with fresh random values, and the target (e.g.
// JobQueue::HostileScribble) turns each into a relaxed-atomic store of
// garbage into live shared state — concurrently with enclave threads and
// workers using that state. This is the adversary the snapshot-then-validate
// boundary (common/untrusted.h) is tested against: the enclave must stay
// crash-free and correct-or-fail-closed no matter where the stores land.
//
// Each scribble consumes one injector trigger, so windows are budgeted and
// counted like every other fault; with the point disarmed the thread idles.
class ScribblerThread {
 public:
  using ScribbleFn = std::function<void(uint64_t rnd)>;

  ScribblerThread(FaultInjector& faults, uint64_t seed, ScribbleFn target)
      : faults_(&faults), rng_(seed ^ 0x5c121bb1e5ull), target_(std::move(target)) {
    thread_ = std::thread([this] { Loop(); });
  }
  ~ScribblerThread() { Stop(); }

  ScribblerThread(const ScribblerThread&) = delete;
  ScribblerThread& operator=(const ScribblerThread&) = delete;

  void Stop() {
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  uint64_t scribbles() const {
    return scribbles_.load(std::memory_order_relaxed);
  }

 private:
  void Loop() {
    while (!stop_.load(std::memory_order_acquire)) {
      if (!faults_->armed(Fault::kSharedMemScribbler)) {
        // Idle outside windows without burning a core.
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        continue;
      }
      if (faults_->ShouldInject(Fault::kSharedMemScribbler)) {
        target_(rng_.Next());
        scribbles_.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::yield();
    }
  }

  FaultInjector* faults_;
  Xoshiro256 rng_;  // thread-private: only Loop() touches it
  ScribbleFn target_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> scribbles_{0};
  std::thread thread_;
};

}  // namespace eleos::sim

#endif  // ELEOS_SRC_SIM_FAULT_INJECTOR_H_
