// Copyright (c) Eleos reproduction authors. MIT license.
//
// The simulated platform: cost model + LLC + EPC + SGX driver + CPUs.
//
// A Machine is the root object every experiment builds first. It owns the
// shared structures (LLC, EPC, driver) and up to kMaxCpus simulated hardware
// threads, each with a private TLB and virtual cycle clock. All accounting
// funnels through Machine::Access.

#ifndef ELEOS_SRC_SIM_MACHINE_H_
#define ELEOS_SRC_SIM_MACHINE_H_

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/sim/cache_model.h"
#include "src/sim/cost_model.h"
#include "src/sim/epc.h"
#include "src/sim/fault_injector.h"
#include "src/sim/sgx_driver.h"
#include "src/sim/vclock.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/timeseries.h"

namespace eleos::sim {

struct MachineConfig {
  CostModel costs{};
  size_t epc_frames = 0;  // 0 => costs.prm_usable_frames
  SgxDriver::SealMode seal_mode = SgxDriver::SealMode::kReal;
  uint64_t fault_seed = 0xfa17;  // seed for the hostile-host fault injector
};

class Machine {
 public:
  explicit Machine(MachineConfig cfg = {});

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  CostModel& costs() { return costs_; }
  const CostModel& costs() const { return costs_; }
  CacheModel& llc() { return llc_; }
  Epc& epc() { return epc_; }
  SgxDriver& driver() { return driver_; }
  // Hostile-host fault injection switchboard (disarmed by default).
  FaultInjector& fault_injector() { return fault_injector_; }
  // Machine-wide metric registry (counters, latency histograms, trace ring).
  // Components resolve their metric pointers from it at construction; the
  // bench harness snapshots it via Registry::ToJson. See DESIGN.md
  // "Telemetry" for the metric catalogue.
  telemetry::Registry& metrics() { return metrics_; }
  const telemetry::Registry& metrics() const { return metrics_; }

  // Registry snapshots are only as fresh as the last PublishTelemetry() of
  // each component (they keep authoritative atomics and mirror them in on
  // demand). Components register their publisher at construction so a single
  // PublishAll() before any ToJson/metric read can't observe stale zeros.
  size_t AddPublisher(std::function<void()> fn) {
    std::lock_guard guard(publishers_mutex_);
    publishers_.emplace_back(next_publisher_id_, std::move(fn));
    return next_publisher_id_++;
  }
  void RemovePublisher(size_t id) {
    std::lock_guard guard(publishers_mutex_);
    for (size_t i = 0; i < publishers_.size(); ++i) {
      if (publishers_[i].first == id) {
        publishers_.erase(publishers_.begin() + static_cast<ptrdiff_t>(i));
        return;
      }
    }
  }
  // Runs every live component's PublishTelemetry (registration order).
  void PublishAll() {
    std::lock_guard guard(publishers_mutex_);
    for (const auto& [id, fn] : publishers_) {
      fn();
    }
  }

  // Simulated hardware threads (created eagerly; addresses are stable).
  CpuContext& cpu(size_t i) { return *cpus_[i]; }
  size_t num_cpus() const { return cpus_.size(); }

  // One memory access of `len` bytes at `addr`: charges TLB walks and cache
  // hit/miss costs per touched line to `cpu`. No-op when cpu is null.
  void Access(CpuContext* cpu, uint64_t addr, size_t len, bool write, MemKind kind);

  // Bulk sequential access (page copies in the paging paths): lines still
  // flow through the cache model (pollution is real) but the cycle charge is
  // the flat streaming rate, since hardware prefetching hides random-miss
  // latency on sequential copies.
  void StreamAccess(CpuContext* cpu, uint64_t addr, size_t len, bool write,
                    MemKind kind);

  // Models the cache pollution of kernel/syscall work: streams `bytes` of
  // untrusted lines through the cache with `cpu`'s class of service. The
  // traffic cycles within a reuse pool of `pool_bytes` (kernel buffers are
  // finite and recycled); 0 selects the default 4 MiB pool.
  void TouchScratch(CpuContext* cpu, size_t bytes, size_t pool_bytes = 0);

  // Pure cache-state pollution with an explicit class of service and no cycle
  // charge to any clock; models work done by *other* cores (RPC workers)
  // that only affects the shared LLC. Same pool semantics as TouchScratch.
  void PolluteCache(size_t bytes, int cos, size_t pool_bytes = 0);

  // Central funnel for every categorized CostModel charge: advances `cpu`'s
  // virtual clock, bumps the matching sim.cycles.* counter, and routes the
  // cycles to the charging thread's innermost open span. The three always
  // moving in lockstep is what makes the span audit invariant structural
  // (see src/telemetry/span.h). Null cpu or zero cycles is a no-op, matching
  // the null-guard semantics every call site already had.
  void ChargeCost(CpuContext* cpu, telemetry::CostCategory cat,
                  uint64_t cycles) {
    if (cpu == nullptr || cycles == 0) {
      return;
    }
    cpu->clock.Advance(cycles);
    cycles_by_cat_[static_cast<size_t>(cat)]->Add(cycles);
    metrics_.spans().ChargeCurrent(cat, cycles);
    // Epoch hook for the time-series sampler: charges zero cycles, one
    // relaxed load when disabled or mid-window (see timeseries.h).
    timeline_->MaybeSample(cpu->clock.now());
  }

  // One-call span tracing opt-in (`audit` additionally enforces span stack
  // discipline and is meant for tests). Call before the traced workload.
  void EnableTracing(bool audit = false) { metrics_.spans().Enable(audit); }

  // One-call timeline sampling opt-in (off by default; sampling charges zero
  // virtual cycles). Call before the sampled workload.
  void EnableTimeline(telemetry::TimeSeriesSampler::Options options = {}) {
    metrics_.timeline().Enable(options, MaxClock());
  }

  // Flushes the open partial timeline window at the maximum virtual clock
  // and refreshes publish-time-only counter mirrors first, so the final
  // window sees them. Call after the workload quiesced, before exporting.
  void CutTimeline() {
    PublishAll();
    metrics_.timeline().ForceCut(MaxClock());
  }

  // Post-mortem flight bundle: publish, flush the timeline, dump. Returns
  // the bundle path, or "" when no flight dir is configured (ELEOS_FLIGHT_DIR
  // unset and flight().set_dir not called) — so harness hooks are free on
  // passing runs. See src/telemetry/flight_recorder.h.
  std::string DumpFlight(const std::string& reason) {
    if (!metrics_.flight().configured()) {
      return "";
    }
    CutTimeline();
    return metrics_.flight().Dump(reason, MaxClock());
  }

  // The furthest-ahead virtual clock across all CPUs ("machine time").
  uint64_t MaxClock() const {
    uint64_t now = 0;
    for (const auto& cpu : cpus_) {
      if (cpu != nullptr && cpu->clock.now() > now) {
        now = cpu->clock.now();
      }
    }
    return now;
  }

  // Runs the tracer's cycle-accounting audit against this machine's
  // sim.cycles.* totals. True on success; fills *error otherwise.
  bool AuditSpanAccounting(std::string* error) const;

  // Export the recorded spans (+ trace ring) once the workload quiesced.
  std::string ExportChromeTrace() const;
  std::string ExportFoldedStacks() const;

 private:
  CostModel costs_;
  // Declared before the driver/CPUs so metric pointers resolved by other
  // components during teardown stay valid until the very end.
  telemetry::Registry metrics_;
  CacheModel llc_;
  Epc epc_;
  SgxDriver driver_;
  FaultInjector fault_injector_;
  // sim.cycles.<category> counter per CostCategory, resolved once in the
  // constructor so ChargeCost stays a few relaxed atomics. The sampler
  // pointer is cached for the same reason.
  telemetry::Counter* cycles_by_cat_[telemetry::kNumCostCategories] = {};
  telemetry::TimeSeriesSampler* timeline_ = nullptr;
  std::array<std::unique_ptr<CpuContext>, kMaxCpus> cpus_;
  // Atomic: TouchScratch/PolluteCache may run from concurrently faulting
  // threads (their window claims race, but each claim stays exclusive).
  std::atomic<uint64_t> scratch_cursor_{0};
  std::mutex publishers_mutex_;
  std::vector<std::pair<size_t, std::function<void()>>> publishers_;
  size_t next_publisher_id_ = 0;
};

// RAII harness hook for the flight recorder: on scope exit, if `failed()`
// reports true (e.g. a lambda over ::testing::Test::HasFailure), dumps a
// flight bundle for `reason`. Free on passing runs and a no-op unless a
// flight dir is configured, so soak harnesses can wrap their bodies
// unconditionally.
class FlightOnFailure {
 public:
  FlightOnFailure(Machine& machine, std::string reason,
                  std::function<bool()> failed)
      : machine_(&machine),
        reason_(std::move(reason)),
        failed_(std::move(failed)) {}
  ~FlightOnFailure() {
    if (failed_ && failed_()) {
      machine_->DumpFlight(reason_);
    }
  }

  FlightOnFailure(const FlightOnFailure&) = delete;
  FlightOnFailure& operator=(const FlightOnFailure&) = delete;

 private:
  Machine* machine_;
  std::string reason_;
  std::function<bool()> failed_;
};

}  // namespace eleos::sim

#endif  // ELEOS_SRC_SIM_MACHINE_H_
