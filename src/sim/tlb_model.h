// Copyright (c) Eleos reproduction authors. MIT license.
//
// Per-core TLB model.
//
// SGX flushes the TLB on every enclave exit (EEXIT and AEX both invalidate
// enclave mappings), which is one of the two indirect exit costs the paper
// quantifies (§2.2.1, Figure 2b). The model is a set-associative unified
// second-level TLB; a miss charges a page-walk.

#ifndef ELEOS_SRC_SIM_TLB_MODEL_H_
#define ELEOS_SRC_SIM_TLB_MODEL_H_

#include <cstdint>
#include <vector>

namespace eleos::sim {

class TlbModel {
 public:
  // Skylake STLB: 1536 entries, 12-way. Defaults chosen to match.
  explicit TlbModel(size_t entries = 1536, size_t ways = 12)
      : ways_(ways), sets_(entries / ways), slots_(entries), tick_(0) {}

  // Looks up a virtual page number; inserts it on miss. Returns hit/miss.
  bool Access(uint64_t vpn) {
    const size_t set = static_cast<size_t>(vpn) % sets_;
    Slot* base = &slots_[set * ways_];
    ++tick_;
    for (size_t w = 0; w < ways_; ++w) {
      if (base[w].valid && base[w].vpn == vpn) {
        base[w].last_used = tick_;
        ++hits_;
        return true;
      }
    }
    // Miss: install over invalid or LRU way.
    size_t victim = 0;
    uint64_t oldest = UINT64_MAX;
    for (size_t w = 0; w < ways_; ++w) {
      if (!base[w].valid) {
        victim = w;
        break;
      }
      if (base[w].last_used < oldest) {
        oldest = base[w].last_used;
        victim = w;
      }
    }
    base[victim] = {vpn, tick_, true};
    ++misses_;
    return false;
  }

  // Full flush, as performed by enclave exits.
  void FlushAll() {
    for (auto& s : slots_) {
      s.valid = false;
    }
    ++flushes_;
  }

  // Single-page shootdown (driver-initiated EPC eviction).
  void Invalidate(uint64_t vpn) {
    const size_t set = static_cast<size_t>(vpn) % sets_;
    Slot* base = &slots_[set * ways_];
    for (size_t w = 0; w < ways_; ++w) {
      if (base[w].valid && base[w].vpn == vpn) {
        base[w].valid = false;
      }
    }
  }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t flushes() const { return flushes_; }

  void ResetStats() {
    hits_ = 0;
    misses_ = 0;
    flushes_ = 0;
  }

 private:
  struct Slot {
    uint64_t vpn = 0;
    uint64_t last_used = 0;
    bool valid = false;
  };

  size_t ways_;
  size_t sets_;
  std::vector<Slot> slots_;
  uint64_t tick_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t flushes_ = 0;
};

}  // namespace eleos::sim

#endif  // ELEOS_SRC_SIM_TLB_MODEL_H_
