// Copyright (c) Eleos reproduction authors. MIT license.
//
// The enclave abstraction: an isolated virtual address space of EPC-backed
// pages plus the trusted/untrusted transition machinery (EENTER, EEXIT,
// OCALL, AEX).
//
// All enclave memory accesses go through Enclave::Data/Read/Write so that
// (a) the simulated driver can page frames in and out underneath — the
// returned raw pointer is valid only until the next driver call — and
// (b) every access is charged through the TLB/LLC models.

#ifndef ELEOS_SRC_SIM_ENCLAVE_H_
#define ELEOS_SRC_SIM_ENCLAVE_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>

#include "src/sim/machine.h"

namespace eleos::sim {

class Enclave {
 public:
  explicit Enclave(Machine& machine, std::string name = "enclave");
  ~Enclave();

  Enclave(const Enclave&) = delete;
  Enclave& operator=(const Enclave&) = delete;

  EnclaveId id() const { return id_; }
  Machine& machine() { return *machine_; }
  const std::string& name() const { return name_; }

  // --- Trusted address space (page-granular bump allocator) ---

  // Reserves `bytes` (rounded up to pages) of enclave virtual memory and
  // returns its vaddr. Pages consume EPC lazily on first touch.
  uint64_t Alloc(size_t bytes);
  void Free(uint64_t vaddr, size_t bytes);

  // Ensures residency of the page containing [vaddr, vaddr+len) (must not
  // cross a page boundary), charges the access, and returns a live pointer.
  uint8_t* Data(CpuContext* cpu, uint64_t vaddr, size_t len, bool write);

  // Page-crossing convenience accessors.
  void Read(CpuContext* cpu, uint64_t vaddr, void* dst, size_t len);
  void Write(CpuContext* cpu, uint64_t vaddr, const void* src, size_t len);

  // --- Transitions ---

  void Enter(CpuContext& cpu);  // EENTER
  void Exit(CpuContext& cpu);   // EEXIT: flushes the TLB (indirect cost!)

  // The SDK OCALL path: exit, run `fn` untrusted (its kernel side touches
  // `io_bytes` of buffers, polluting the LLC), re-enter. Returns fn's result.
  template <typename Fn>
  decltype(auto) Ocall(CpuContext& cpu, size_t io_bytes, Fn&& fn) {
    const CostModel& c = machine_->costs();
    SpanScope span(&machine_->metrics().spans(), &cpu, "enclave.ocall");
    Exit(cpu);
    machine_->ChargeCost(&cpu, telemetry::CostCategory::kTransitions,
                         c.ocall_sdk_cycles + c.syscall_cycles);
    if (io_bytes > 0) {  // io_bytes == 0: the callee models its own buffers
      machine_->TouchScratch(&cpu, io_bytes + c.syscall_kernel_footprint);
    }
    if constexpr (std::is_void_v<std::invoke_result_t<Fn>>) {
      std::forward<Fn>(fn)();
      Enter(cpu);
    } else {
      auto result = std::forward<Fn>(fn)();
      Enter(cpu);
      return result;
    }
  }

  int threads_inside() const { return threads_inside_; }

  // --- In-enclave crypto cycle charges (AES-NI rates) ---
  void ChargeGcm(CpuContext* cpu, size_t bytes);
  void ChargeCtr(CpuContext* cpu, size_t bytes);

  // Total pages currently reserved.
  size_t reserved_pages() const { return reserved_pages_; }

 private:
  friend class SgxDriver;

  Machine* machine_;
  std::string name_;
  EnclaveId id_;
  uint64_t vaddr_base_;
  uint64_t bump_ = 0;
  size_t reserved_pages_ = 0;
  int threads_inside_ = 0;
};

// RAII ECALL scope: enters on construction, exits on destruction.
class EcallScope {
 public:
  EcallScope(Enclave& enclave, CpuContext& cpu) : enclave_(enclave), cpu_(cpu) {
    enclave_.Enter(cpu_);
  }
  ~EcallScope() { enclave_.Exit(cpu_); }
  EcallScope(const EcallScope&) = delete;
  EcallScope& operator=(const EcallScope&) = delete;

 private:
  Enclave& enclave_;
  CpuContext& cpu_;
};

}  // namespace eleos::sim

#endif  // ELEOS_SRC_SIM_ENCLAVE_H_
