// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/sim/machine.h"

#include <string>

namespace eleos::sim {
namespace {

// Synthetic address region for kernel scratch traffic; far from both enclave
// vaddr bases ((id+1) << 40, ids < 32 => below 0x21'00000000'00) and typical
// Linux heap pointers (0x55.. and up).
constexpr uint64_t kScratchBase = 0x3f00'0000'0000ull;
constexpr uint64_t kDefaultScratchPool = 4ull << 20;  // recycled kernel buffers

}  // namespace

Machine::Machine(MachineConfig cfg)
    : costs_(cfg.costs),
      llc_(costs_),
      epc_(cfg.epc_frames != 0 ? cfg.epc_frames : costs_.prm_usable_frames),
      driver_(this),
      fault_injector_(cfg.fault_seed) {
  driver_.set_seal_mode(cfg.seal_mode);
  for (size_t c = 0; c < telemetry::kNumCostCategories; ++c) {
    cycles_by_cat_[c] = metrics_.GetCounter(
        std::string("sim.cycles.") +
        telemetry::CostCategoryName(static_cast<telemetry::CostCategory>(c)));
  }
  timeline_ = &metrics_.timeline();
  for (size_t i = 0; i < cpus_.size(); ++i) {
    cpus_[i] = std::make_unique<CpuContext>(this, static_cast<int>(i));
  }
}

bool Machine::AuditSpanAccounting(std::string* error) const {
  uint64_t totals[telemetry::kNumCostCategories];
  for (size_t c = 0; c < telemetry::kNumCostCategories; ++c) {
    totals[c] = cycles_by_cat_[c]->value();
  }
  return metrics_.spans().AuditCycleAccounting(totals, error);
}

std::string Machine::ExportChromeTrace() const {
  return telemetry::ExportChromeTrace(metrics_.spans(), metrics_.trace(),
                                      &metrics_.timeline());
}

std::string Machine::ExportFoldedStacks() const {
  return telemetry::ExportFoldedStacks(metrics_.spans());
}

void Machine::Access(CpuContext* cpu, uint64_t addr, size_t len, bool write,
                     MemKind kind) {
  if (cpu == nullptr || len == 0) {
    return;
  }
  const uint64_t first_line = addr >> 6;
  const uint64_t last_line = (addr + len - 1) >> 6;
  uint64_t prev_vpn = UINT64_MAX;
  uint64_t charged = 0;
  size_t line_index = 0;
  for (uint64_t line = first_line; line <= last_line; ++line, ++line_index) {
    const uint64_t vpn = line >> 6;  // 64 lines per 4 KiB page
    if (vpn != prev_vpn) {
      prev_vpn = vpn;
      if (!cpu->tlb.Access(vpn)) {
        charged += kind == MemKind::kEpc ? costs_.tlb_walk_epc_cycles
                                         : costs_.tlb_walk_cycles;
      }
    }
    uint64_t cost = llc_.Access(line, write, kind, cpu->cos);
    // Hardware prefetch: within one contiguous access, misses past the first
    // two lines are streamed, not paid at random-miss latency.
    if (line_index >= 2 && cost >= costs_.llc_miss_cycles) {
      cost = kind == MemKind::kEpc ? costs_.stream_epc_line_cycles
                                   : costs_.stream_line_cycles;
    }
    charged += cost;
  }
  ChargeCost(cpu, telemetry::CostCategory::kCache, charged);
}

void Machine::StreamAccess(CpuContext* cpu, uint64_t addr, size_t len, bool write,
                           MemKind kind) {
  if (cpu == nullptr || len == 0) {
    return;
  }
  const uint64_t first_line = addr >> 6;
  const uint64_t last_line = (addr + len - 1) >> 6;
  uint64_t prev_vpn = UINT64_MAX;
  uint64_t charged = 0;
  for (uint64_t line = first_line; line <= last_line; ++line) {
    const uint64_t vpn = line >> 6;
    if (vpn != prev_vpn) {
      prev_vpn = vpn;
      if (!cpu->tlb.Access(vpn)) {
        charged += kind == MemKind::kEpc ? costs_.tlb_walk_epc_cycles
                                         : costs_.tlb_walk_cycles;
      }
    }
    llc_.Access(line, write, kind, cpu->cos);  // state effect only
    charged += kind == MemKind::kEpc ? costs_.stream_epc_line_cycles
                                     : costs_.stream_line_cycles;
  }
  ChargeCost(cpu, telemetry::CostCategory::kCache, charged);
}

void Machine::PolluteCache(size_t bytes, int cos, size_t pool_bytes) {
  if (bytes == 0) {
    return;
  }
  const uint64_t pool = pool_bytes == 0 ? kDefaultScratchPool : pool_bytes;
  const uint64_t cursor =
      scratch_cursor_.fetch_add(bytes, std::memory_order_relaxed);
  const uint64_t addr = kScratchBase + (cursor % pool);
  const uint64_t first_line = addr >> 6;
  const uint64_t last_line = (addr + bytes - 1) >> 6;
  for (uint64_t line = first_line; line <= last_line; ++line) {
    llc_.Access(line, /*write=*/true, MemKind::kUntrusted, cos);
  }
}

void Machine::TouchScratch(CpuContext* cpu, size_t bytes, size_t pool_bytes) {
  if (cpu == nullptr || bytes == 0) {
    return;
  }
  const uint64_t pool = pool_bytes == 0 ? kDefaultScratchPool : pool_bytes;
  const uint64_t cursor =
      scratch_cursor_.fetch_add(bytes, std::memory_order_relaxed);
  const uint64_t addr = kScratchBase + (cursor % pool);
  // Kernel I/O buffers are filled sequentially: streaming charge + pollution.
  StreamAccess(cpu, addr, bytes, /*write=*/true, MemKind::kUntrusted);
}

}  // namespace eleos::sim
