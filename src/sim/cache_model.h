// Copyright (c) Eleos reproduction authors. MIT license.
//
// Shared last-level-cache model with Intel CAT (Cache Allocation Technology)
// way partitioning, plus a model of the SGX Memory Encryption Engine's
// integrity-tree node cache.
//
// This is where both of the paper's indirect costs live:
//  * LLC pollution: syscall I/O buffers (OCALL path) or RPC worker buffers
//    compete with enclave data for LLC space. CAT confines a class of
//    service to a subset of ways *for fills*; lookups still hit all ways.
//  * Expensive EPC misses: an LLC miss to an EPC line pays the MEE
//    decrypt + integrity-walk factors of Table 1. Writes whose integrity
//    tree node misses the MEE node cache (random patterns) pay the higher
//    factor.

#ifndef ELEOS_SRC_SIM_CACHE_MODEL_H_
#define ELEOS_SRC_SIM_CACHE_MODEL_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/common/spinlock.h"
#include "src/sim/cost_model.h"

namespace eleos::sim {

// Memory spaces distinguish the miss penalty.
enum class MemKind : uint8_t {
  kUntrusted = 0,  // regular DRAM
  kEpc = 1,        // processor-reserved, MEE-protected
};

// CAT classes of service used throughout the repo.
inline constexpr int kCosShared = 0;    // no partitioning: all ways
inline constexpr int kCosEnclave = 1;   // Eleos: 75% of ways
inline constexpr int kCosRpcWorker = 2; // Eleos: 25% of ways
inline constexpr int kNumCos = 3;

class CacheModel {
 public:
  explicit CacheModel(const CostModel& costs);

  // Sets the fill mask (bit i = way i usable) for a class of service.
  void SetWayMask(int cos, uint64_t mask);
  // Convenience: Eleos's 75/25 split between enclave and RPC worker.
  void EnablePartitioning(double enclave_fraction = 0.75);
  void DisablePartitioning();

  // One cache-line access. Returns the cycle cost (L1/LLC hit or miss with
  // the proper EPC factors applied). Thread-safe: the LLC is a shared
  // resource, so concurrently faulting CPUs serialize on an internal lock
  // (their interleaving decides the shared line/MEE state, which is why
  // multi-threaded cycle counts are ordering-dependent while single-threaded
  // runs stay deterministic).
  uint64_t Access(uint64_t line_addr, bool write, MemKind kind, int cos);

  // Stats.
  uint64_t hits() const {
    std::lock_guard guard(lock_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard guard(lock_);
    return misses_;
  }
  void ResetStats();

  size_t num_sets() const { return sets_; }
  size_t num_ways() const { return ways_; }

 private:
  struct Line {
    uint64_t tag = 0;
    uint64_t last_used = 0;
    bool valid = false;
  };

  bool MeeTreeAccess(uint64_t page);  // returns hit; requires lock_ held

  mutable Spinlock lock_;  // guards lines_/tick_/hits_/misses_ and the MEE LRU
  const CostModel& costs_;
  size_t ways_;
  size_t sets_;
  std::vector<Line> lines_;
  uint64_t way_mask_[kNumCos];
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;

  // Tiny fully-associative LRU of integrity-tree nodes (one node per page).
  std::vector<uint64_t> mee_pages_;
  std::vector<uint64_t> mee_used_;
  uint64_t mee_tick_ = 0;
};

}  // namespace eleos::sim

#endif  // ELEOS_SRC_SIM_CACHE_MODEL_H_
