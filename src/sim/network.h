// Copyright (c) Eleos reproduction authors. MIT license.
//
// Simple 10 Gb/s NIC model (the paper's load-generation setup: a separate
// client machine connected back-to-back over a dedicated 10 Gb NIC).
//
// The model serves two purposes:
//  * `RecvCycles`/`SendCycles` give the wire+stack latency a server thread
//    observes per message;
//  * `MaxMessagesPerSecond` gives the link-bandwidth ceiling that bounds the
//    *native* face-verification server in Figure 10.

#ifndef ELEOS_SRC_SIM_NETWORK_H_
#define ELEOS_SRC_SIM_NETWORK_H_

#include <cstdint>

#include "src/sim/cost_model.h"

namespace eleos::sim {

class Network {
 public:
  explicit Network(const CostModel& costs) : costs_(costs) {}

  // Cycles spent on the wire + NIC/stack for one message.
  uint64_t MessageCycles(size_t bytes) const { return costs_.WireCycles(bytes); }

  // Bandwidth ceiling for a request/response pair of the given sizes.
  double MaxRequestsPerSecond(size_t request_bytes, size_t response_bytes) const {
    const double bytes_per_req = static_cast<double>(request_bytes + response_bytes);
    const double link_bytes_per_s = costs_.network_gbps * 1e9 / 8.0;
    return link_bytes_per_s / bytes_per_req;
  }

  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }

  void RecordSend(size_t bytes) { bytes_sent_ += bytes; }
  void RecordRecv(size_t bytes) { bytes_received_ += bytes; }

 private:
  const CostModel& costs_;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
};

}  // namespace eleos::sim

#endif  // ELEOS_SRC_SIM_NETWORK_H_
