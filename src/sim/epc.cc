// Copyright (c) Eleos reproduction authors. MIT license.

#include "src/sim/epc.h"

#include <cstring>

namespace eleos::sim {

Epc::Epc(size_t usable_frames)
    : total_frames_(usable_frames),
      storage_(new uint8_t[usable_frames * kPageSize]) {
  free_list_.reserve(usable_frames);
  // Pop order is from the back; push frames reversed so allocation starts at 0.
  for (size_t i = usable_frames; i > 0; --i) {
    free_list_.push_back(static_cast<FrameId>(i - 1));
  }
}

FrameId Epc::Alloc() {
  if (free_list_.empty()) {
    return kInvalidFrame;
  }
  const FrameId f = free_list_.back();
  free_list_.pop_back();
  std::memset(FrameData(f), 0, kPageSize);
  return f;
}

void Epc::Free(FrameId frame) { free_list_.push_back(frame); }

}  // namespace eleos::sim
