// Copyright (c) Eleos reproduction authors. MIT license.
//
// Virtual cycle clock and simulated CPU (hardware-thread) context.
//
// In-enclave RDTSC is unsupported on SGX1 (the paper resorts to an external
// measurement thread); the simulator instead gives every simulated hardware
// thread a virtual cycle counter that components charge as they execute.
// All reproduced figures are computed from these counters.

#ifndef ELEOS_SRC_SIM_VCLOCK_H_
#define ELEOS_SRC_SIM_VCLOCK_H_

#include <cstdint>

#include "src/sim/cache_model.h"
#include "src/sim/tlb_model.h"

namespace eleos::telemetry {
class SpanTracer;
}  // namespace eleos::telemetry

namespace eleos::sim {

class Machine;
class Enclave;

class VClock {
 public:
  void Advance(uint64_t cycles) { cycles_ += cycles; }
  uint64_t now() const { return cycles_; }
  void Reset() { cycles_ = 0; }

 private:
  uint64_t cycles_ = 0;
};

// One simulated hardware thread: its clock, private TLB, and CAT class of
// service. A real OS thread drives at most one CpuContext at a time (bound
// via BindCpu below).
struct CpuContext {
  CpuContext(Machine* m, int cpu_id) : machine(m), id(cpu_id) {}

  Machine* machine;
  int id;
  VClock clock;
  TlbModel tlb;
  int cos = kCosShared;
  Enclave* enclave = nullptr;  // non-null while logically inside an enclave
  // Bumped on every TLB flush; the driver compares it against per-page stamps
  // to decide which CPUs need a shootdown IPI when evicting an EPC page.
  uint32_t tlb_epoch = 1;

  void Charge(uint64_t cycles) { clock.Advance(cycles); }
};

// Thread-local binding so deep code (spointer dereference operators, the C
// API) can charge the current simulated CPU without threading a context
// parameter through every call. A null binding disables accounting: the code
// stays fully functional, it just costs zero virtual cycles (used by unit
// tests that only check behaviour).
CpuContext* CurrentCpu();
void BindCpu(CpuContext* cpu);

// RAII span bound to a CpuContext: opens a child span of the calling
// thread's innermost open span, timestamped from the CPU's virtual clock and
// placed on that CPU's track. No-op (id() == 0) when the tracer is null or
// disabled, or when there is no CPU to read a clock from — span sites can be
// unconditional. `name` must be a string literal.
class SpanScope {
 public:
  SpanScope(telemetry::SpanTracer* spans, CpuContext* cpu, const char* name);
  ~SpanScope();
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  uint64_t id() const { return id_; }

 private:
  telemetry::SpanTracer* spans_;
  CpuContext* cpu_;
  uint64_t id_ = 0;
};

// RAII binder.
class ScopedCpu {
 public:
  explicit ScopedCpu(CpuContext* cpu) : prev_(CurrentCpu()) { BindCpu(cpu); }
  ~ScopedCpu() { BindCpu(prev_); }
  ScopedCpu(const ScopedCpu&) = delete;
  ScopedCpu& operator=(const ScopedCpu&) = delete;

 private:
  CpuContext* prev_;
};

}  // namespace eleos::sim

#endif  // ELEOS_SRC_SIM_VCLOCK_H_
