// Copyright (c) Eleos reproduction authors. MIT license.
//
// Simulated SGX kernel driver: demand paging of EPC pages.
//
// Reproduces the behaviour of Intel's Linux `isgx` driver that the paper
// measures against (§2.3) and extends (§3.3):
//  * Pages are materialized lazily (zero-filled on first touch).
//  * Under PRM pressure a background swapper evicts batches of pages to keep
//    a small free pool; evictions seal page contents with AES-GCM into
//    untrusted memory, exactly like the EWB instruction (privacy, integrity,
//    freshness via a fresh nonce per eviction).
//  * Evicting a page whose translation may still live in another core's TLB
//    requires ETRACK + shootdown IPIs; a core inside the enclave receives
//    the IPI and is forced through AEX (this is the multi-threaded overhead
//    Table 2 quantifies, and what SUVM avoids entirely).
//  * An EPC page fault costs AEX + kernel + ELDU work + ERESUME; indirect
//    costs (TLB refill, cache misses) follow from the flushed TLB model.
//  * The Eleos extension: an ioctl that reports the enclave's fair share of
//    PRM so SUVM can balloon its EPC++ (the driver splits PRM evenly among
//    active enclaves, the same heuristic as the paper's implementation).

#ifndef ELEOS_SRC_SIM_SGX_DRIVER_H_
#define ELEOS_SRC_SIM_SGX_DRIVER_H_

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/spinlock.h"
#include "src/crypto/gcm.h"
#include "src/sim/epc.h"
#include "src/sim/vclock.h"

namespace eleos::sim {

class Machine;
class Enclave;

using EnclaveId = uint32_t;

inline constexpr int kMaxCpus = 8;

class SgxDriver {
 public:
  // How evicted pages are protected. kReal runs AES-GCM over every page
  // (default; integrity failures abort). kFast memcpy-only, for large
  // benchmark sweeps where crypto correctness is not under test — virtual
  // cycle charges are identical in both modes.
  enum class SealMode { kReal, kFast };

  explicit SgxDriver(Machine* machine);

  EnclaveId RegisterEnclave(Enclave* enclave);
  void UnregisterEnclave(EnclaveId id);

  // Reserve / release a run of virtual pages for an enclave. Reserved pages
  // consume no EPC until first touch.
  void ReservePages(Enclave& enclave, uint64_t vpage, size_t count);
  void ReleasePages(Enclave& enclave, uint64_t vpage, size_t count);

  // Ensures the page is EPC-resident, charging the full hardware-fault cost
  // to `cpu` when it is not (cpu may be null: functional-only access).
  // Returns the frame data pointer — valid only until the next driver call.
  uint8_t* Touch(CpuContext* cpu, Enclave& enclave, uint64_t vpage, bool write);

  bool IsResident(const Enclave& enclave, uint64_t vpage) const;

  // Records that `cpu`'s TLB may cache this page's translation (used to
  // decide shootdown IPIs on eviction).
  void NoteTlbPresence(Enclave& enclave, uint64_t vpage, CpuContext& cpu);

  // The Eleos ioctl (§3.3 / §4.1): how many EPC frames this enclave may use;
  // today's driver splits PRM evenly among active enclaves.
  size_t AvailableFramesFor(EnclaveId id) const;

  void set_seal_mode(SealMode mode) { seal_mode_ = mode; }

  // --- Data sealing service (EGETKEY/sealed-blob analog) ---
  // Seals an arbitrary enclave-produced blob so it survives enclave (and
  // host-process) death. The AAD binds the *enclave name* — the MRENCLAVE
  // analog — so a restarted instance of the same enclave identity (which gets
  // a fresh EnclaveId) can unseal it, but a different enclave cannot.
  struct SealedBlob {
    std::vector<uint8_t> ciphertext;
    uint8_t nonce[crypto::kGcmNonceSize] = {};
    uint8_t tag[crypto::kGcmTagSize] = {};
    bool fast = false;  // sealed under SealMode::kFast (no crypto)
  };
  SealedBlob SealBlob(CpuContext* cpu, Enclave& enclave, const uint8_t* data,
                      size_t len);
  // Unseals into `out`; false on a MAC failure (tampered or wrong-enclave
  // blob) or a seal-mode mismatch. Cycle charges are identical either way.
  bool UnsealBlob(CpuContext* cpu, Enclave& enclave, const SealedBlob& blob,
                  std::vector<uint8_t>* out);

  // --- Monotonic counter service (freshness / rollback detection) ---
  // The driver outlives enclave instances (it is the "platform"), so the
  // counter is what lets a restarted enclave reject a stale sealed root.
  uint64_t BumpMonotonicCounter();
  uint64_t monotonic_counter() const;

  // Background-swapper tuning: the driver keeps at least `low` frames free,
  // evicting in batches of `batch` (mirrors the async swapper thread which
  // causes IPIs even for single-threaded enclaves — paper footnote 3).
  void ConfigureSwapper(size_t low_watermark, size_t batch);

  struct Stats {
    uint64_t faults = 0;        // hardware EPC page faults
    uint64_t evictions = 0;     // pages sealed out (EWB)
    uint64_t writebacks = 0;    // == evictions: EWB always writes back
    uint64_t page_ins = 0;      // sealed pages reloaded (ELDU)
    uint64_t zero_fills = 0;    // first-touch materializations
    uint64_t ipis = 0;          // shootdown IPIs sent
    uint64_t shootdown_aexes = 0;  // forced AEXes on IPI receivers
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

  size_t free_frames() const;
  size_t enclave_count() const { return enclaves_.size(); }

 private:
  struct PageState {
    FrameId frame = kInvalidFrame;
    std::unique_ptr<uint8_t[]> sealed;  // kPageSize ciphertext when evicted
    uint8_t nonce[crypto::kGcmNonceSize] = {};
    uint8_t tag[crypto::kGcmTagSize] = {};
    bool has_sealed = false;
    bool referenced = false;  // second-chance bit
    // cpu_id -> tlb_epoch at last access; matches cpu.tlb_epoch while the
    // translation may still be cached.
    std::array<uint32_t, kMaxCpus> tlb_stamp = {};
  };

  struct EnclaveRec {
    Enclave* enclave = nullptr;
    std::unordered_map<uint64_t, PageState> pages;
    size_t resident = 0;
  };

  struct ResidentRef {
    EnclaveId enclave;
    uint64_t vpage;
  };

  // Evicts one page (the clock hand chooses); returns false if nothing
  // evictable. `initiator` is charged the EWB cost when non-null. The owner
  // enclave of the victim is reported via `owner_out` so the caller can run
  // the ETRACK round.
  bool EvictOne(CpuContext* initiator, EnclaveId* owner_out);
  void SealPage(CpuContext* cpu, EnclaveRec& rec, uint64_t vpage, PageState& ps);
  void UnsealPage(CpuContext* cpu, EnclaveRec& rec, uint64_t vpage, PageState& ps,
                  uint8_t* frame_data);
  // ETRACK round for an enclave whose page(s) are being evicted: every
  // hardware thread currently executing inside it receives a shootdown IPI
  // and is forced through AEX. `include_initiator` distinguishes the
  // asynchronous-swapper case (the faulting thread is conceptually still
  // inside — paper footnote 3) from post-AEX eviction.
  void EtrackSweep(CpuContext* initiator, EnclaveId owner, bool include_initiator);
  FrameId ObtainFrame(CpuContext* cpu);
  void RunSwapper(CpuContext* cpu);

  // The driver is the kernel: one big lock serializes all paging state, like
  // the real isgx driver's per-EPC locking. Charging/LLC side effects happen
  // under it, which is fine — accounting-carrying CPUs are driven one at a
  // time, while functional-only (null-cpu) threads just need mutual exclusion.
  mutable Spinlock lock_;
  Machine* machine_;
  SealMode seal_mode_ = SealMode::kReal;
  std::unordered_map<EnclaveId, EnclaveRec> enclaves_;
  EnclaveId next_id_ = 1;

  std::vector<ResidentRef> resident_ring_;
  size_t clock_hand_ = 0;

  size_t swapper_low_watermark_ = 8;
  size_t swapper_batch_ = 2;

  crypto::AesGcm sealer_;
  Xoshiro256 nonce_rng_;
  Stats stats_;
  uint64_t monotonic_counter_ = 0;  // guarded by lock_
};

}  // namespace eleos::sim

#endif  // ELEOS_SRC_SIM_SGX_DRIVER_H_
