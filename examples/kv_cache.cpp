// Copyright (c) Eleos reproduction authors. MIT license.
//
// A memcached-style secure key-value cache (§5.1) as a runnable example,
// using the C-level SUVM API exactly as the paper's 75-line memcached
// integration does: item metadata (hash chains, LRU, slab bookkeeping) in
// cleartext untrusted memory; keys, values, and sizes in SUVM.
//
// Run:  ./build/examples/kv_cache

#include <cstdio>
#include <cstring>
#include <string>

#include "src/apps/kvcache.h"
#include "src/rpc/rpc_manager.h"
#include "src/suvm/suvm.h"
#include "src/suvm/suvm_c.h"

int main() {
  using namespace eleos;

  sim::MachineConfig mc;
  mc.seal_mode = sim::SgxDriver::SealMode::kFast;
  sim::Machine machine(mc);
  sim::Enclave enclave(machine, "kvcache");

  suvm::SuvmConfig sc;
  sc.epc_pp_pages = (8ull << 20) / 4096;  // 8 MiB page cache
  sc.backing_bytes = 128ull << 20;
  sc.fast_seal = true;
  suvm::Suvm suvm(enclave, sc);

  std::printf("== Secure KV cache (memcached-style) over SUVM ==\n\n");

  // --- Low-level taste of the C API the cache is built on ---
  suvm_ctx* ctx = suvm_ctx_from(&suvm);
  const suvm_addr_t secret = suvm_malloc(ctx, 64);
  suvm_set_bytes(ctx, secret, "attack at dawn", 15);
  char read_back[15];
  suvm_get_bytes(ctx, secret, read_back, sizeof(read_back));
  std::printf("C API round-trip: \"%s\"\n", read_back);
  suvm_free(ctx, secret);

  // --- The cache itself: 32 MiB of secure values through 8 MiB of EPC++ ---
  apps::KvCache::Options opts;
  opts.pool_bytes = 48ull << 20;
  apps::SuvmRegion region(suvm, opts.pool_bytes);
  apps::KvCache cache(machine, region, opts);

  rpc::RpcManager rpc(enclave, {.mode = rpc::RpcManager::Mode::kInline,
                                .use_cat = true});
  sim::CpuContext& cpu = machine.cpu(0);
  cpu.cos = rpc.enclave_cos();
  enclave.Enter(cpu);

  const int items = 20000;
  std::string value(1500, '#');
  for (int i = 0; i < items; ++i) {
    rpc.Call(&cpu, 64 + value.size(), [] {});  // exit-less "recv" of the SET
    value[0] = static_cast<char>('A' + i % 26);
    cache.Set(&cpu, "user:" + std::to_string(i), value.data(), value.size());
  }
  std::printf("stored %d items (%.0f MiB of secure data)\n", items,
              items * 1508.0 / (1 << 20));

  int hits = 0;
  char out[2048];
  for (int i = 0; i < items; i += 7) {
    rpc.Call(&cpu, 64, [] {});
    const int64_t n = cache.Get(&cpu, "user:" + std::to_string(i), out, sizeof(out));
    if (n == 1500 && out[0] == 'A' + i % 26) {
      ++hits;
    }
  }
  enclave.Exit(cpu);

  std::printf("verified %d / %d sampled GETs\n", hits, (items + 6) / 7);
  std::printf("\nSUVM stats: %lu software faults, %lu evictions "
              "(%lu write-backs, %lu clean drops)\n",
              static_cast<unsigned long>(suvm.stats().major_faults.load()),
              static_cast<unsigned long>(suvm.stats().evictions.load()),
              static_cast<unsigned long>(suvm.stats().writebacks.load()),
              static_cast<unsigned long>(suvm.stats().clean_drops.load()));
  std::printf("hardware EPC faults: %lu; TLB flushes on the serving thread: %lu\n",
              static_cast<unsigned long>(machine.driver().stats().faults),
              static_cast<unsigned long>(cpu.tlb.flushes()));
  std::printf("cache stats: %lu sets, %lu gets, %lu hits, %lu LRU evictions\n",
              static_cast<unsigned long>(cache.stats().sets),
              static_cast<unsigned long>(cache.stats().gets),
              static_cast<unsigned long>(cache.stats().get_hits),
              static_cast<unsigned long>(cache.stats().evictions));
  return 0;
}
