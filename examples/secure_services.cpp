// Copyright (c) Eleos reproduction authors. MIT license.
//
// The "new services" direction of the paper's conclusion, running together:
//   * ProtectedFile — sealed persistent storage over the exit-less libOS
//     file layer (the Graphene role, but without exits);
//   * SecureChannel — inter-enclave shared-memory messaging with integrity
//     and freshness, something SGX itself does not provide.
//
// A "producer" enclave ingests records, seals them into a protected file,
// and streams summaries to a "consumer" enclave over the channel.
//
// Run:  ./build/examples/secure_services

#include <cstdio>
#include <cstring>
#include <string>

#include "src/libos/fs.h"
#include "src/suvm/secure_channel.h"

int main() {
  using namespace eleos;

  sim::Machine machine;
  sim::Enclave producer(machine, "ingest");
  sim::Enclave consumer(machine, "analytics");
  libos::MemFs host_fs;

  std::printf("== Exit-less secure services: protected files + channels ==\n\n");

  // Producer: exit-less file syscalls through an RPC manager.
  rpc::RpcManager rpc(producer, {.mode = rpc::RpcManager::Mode::kInline,
                                 .use_cat = true});
  libos::EnclaveFs fs(producer, host_fs, libos::ExitMode::kRpc, &rpc);
  libos::ProtectedFile ledger(fs, producer, "/ledger.sealed", /*key_seed=*/7);

  suvm::SecureChannel channel(machine, {.capacity = 32, .max_msg_bytes = 128});
  suvm::ChannelSender tx(channel, producer);
  suvm::ChannelReceiver rx(channel, consumer);

  sim::CpuContext& cpu0 = machine.cpu(0);
  sim::CpuContext& cpu1 = machine.cpu(1);
  producer.Enter(cpu0);
  consumer.Enter(cpu1);

  // Producer ingests 200 records.
  struct Record {
    uint64_t id;
    uint64_t amount;
  };
  uint64_t total = 0;
  for (uint64_t i = 0; i < 200; ++i) {
    const Record rec{i, (i * 37) % 1000};
    ledger.WriteAt(&cpu0, i * sizeof(Record), &rec, sizeof(rec));
    total += rec.amount;
    if (i % 50 == 49) {  // stream a running summary to the analytics enclave
      char msg[64];
      const int len = snprintf(msg, sizeof(msg), "records=%lu total=%lu",
                               static_cast<unsigned long>(i + 1),
                               static_cast<unsigned long>(total));
      while (!tx.TrySend(&cpu0, msg, static_cast<size_t>(len) + 1)) {
      }
    }
  }

  // Consumer drains the summaries.
  char msg[128];
  while (rx.TryRecv(&cpu1, msg, sizeof(msg)) > 0) {
    std::printf("analytics enclave received: %s\n", msg);
  }

  // Verify the sealed ledger by reading it back inside the producer.
  uint64_t check = 0;
  for (uint64_t i = 0; i < 200; ++i) {
    Record rec;
    ledger.ReadAt(&cpu0, i * sizeof(Record), &rec, sizeof(rec));
    check += rec.amount;
  }
  producer.Exit(cpu0);
  consumer.Exit(cpu1);

  std::printf("\nledger verified: %s (sum %lu)\n",
              check == total ? "OK" : "CORRUPT",
              static_cast<unsigned long>(check));
  std::printf("host sees only ciphertext: /ledger.sealed is %ld bytes of "
              "sealed blocks\n",
              static_cast<long>(host_fs.FileSize("/ledger.sealed")));
  std::printf("file syscalls issued: %lu, all exit-less (TLB flushes on the "
              "producer thread: %lu)\n",
              static_cast<unsigned long>(fs.syscalls()),
              static_cast<unsigned long>(cpu0.tlb.flushes()));
  return check == total ? 0 : 1;
}
