// Copyright (c) Eleos reproduction authors. MIT license.
//
// Quickstart: the smallest end-to-end Eleos program.
//
// Builds a simulated SGX machine, creates an enclave, and shows the two
// Eleos services side by side with what they replace:
//   1. An exit-less RPC call vs a classic OCALL (system calls).
//   2. A SUVM secure buffer vs native SGX hardware paging (secure memory).
//
// Run:  ./build/examples/quickstart

#include <cstdio>
#include <cstring>

#include "src/baseline/sgx_buffer.h"
#include "src/rpc/rpc_manager.h"
#include "src/suvm/spointer.h"
#include "src/suvm/suvm.h"

int main() {
  using namespace eleos;

  // A simulated Skylake SGX machine: 8 MiB LLC, ~90 MiB usable EPC, the
  // paper's measured transition/paging costs.
  sim::Machine machine;
  sim::Enclave enclave(machine, "quickstart");
  sim::CpuContext& cpu = machine.cpu(0);

  std::printf("== Eleos quickstart ==\n\n");

  // --- 1. System calls: OCALL vs exit-less RPC -------------------------
  enclave.Enter(cpu);

  uint64_t t0 = cpu.clock.now();
  const int via_ocall = enclave.Ocall(cpu, /*io_bytes=*/64, [] {
    return 42;  // untrusted work (e.g. recv()), reached by exiting the enclave
  });
  const uint64_t ocall_cycles = cpu.clock.now() - t0;

  rpc::RpcManager rpc(enclave, {.mode = rpc::RpcManager::Mode::kThreaded,
                                .use_cat = true,
                                .workers = 1});
  cpu.cos = rpc.enclave_cos();  // run with the enclave's LLC partition

  t0 = cpu.clock.now();
  const int via_rpc = rpc.Call(&cpu, /*io_bytes=*/64, [] {
    return 42;  // same untrusted work, executed by a worker thread instead
  });
  const uint64_t rpc_cycles = cpu.clock.now() - t0;

  std::printf("system call via OCALL:       %5lu cycles (result %d)\n",
              static_cast<unsigned long>(ocall_cycles), via_ocall);
  std::printf("system call via Eleos RPC:   %5lu cycles (result %d) -> %.1fx faster\n\n",
              static_cast<unsigned long>(rpc_cycles), via_rpc,
              static_cast<double>(ocall_cycles) / static_cast<double>(rpc_cycles));

  // --- 2. Secure memory: SUVM spointers --------------------------------
  // A 4 MiB secure array managed by SUVM: paged by *trusted user-space*
  // code, with AES-GCM-sealed pages in untrusted memory — no enclave exits.
  suvm::SuvmConfig cfg;
  cfg.epc_pp_pages = 256;  // 1 MiB page cache: the array does not fit -> paging
  cfg.backing_bytes = 16ull << 20;
  suvm::Suvm suvm(enclave, cfg);

  sim::ScopedCpu bind(&cpu);  // spointers charge the bound simulated CPU
  auto numbers = suvm::SuvmAlloc<uint64_t>(suvm, 512 * 1024);  // 4 MiB

  for (int i = 0; i < 512 * 1024; ++i) {
    numbers[i] = static_cast<uint64_t>(i) * 3;
  }
  uint64_t sum = 0;
  for (int i = 0; i < 512 * 1024; i += 4096) {
    sum += numbers.GetAt(i);  // Get() keeps pages clean (no write-back)
  }

  std::printf("SUVM: stored 4 MiB through a 1 MiB page cache\n");
  std::printf("  software page faults: %lu (handled inside the enclave)\n",
              static_cast<unsigned long>(suvm.stats().major_faults.load()));
  std::printf("  evictions: %lu, write-backs: %lu, clean drops: %lu\n",
              static_cast<unsigned long>(suvm.stats().evictions.load()),
              static_cast<unsigned long>(suvm.stats().writebacks.load()),
              static_cast<unsigned long>(suvm.stats().clean_drops.load()));
  std::printf("  hardware EPC faults during SUVM paging: %lu\n",
              static_cast<unsigned long>(machine.driver().stats().faults));
  std::printf("  checksum: %lu\n\n", static_cast<unsigned long>(sum));

  enclave.Exit(cpu);
  std::printf("done: %lu total virtual cycles (%.2f ms at 3.4 GHz)\n",
              static_cast<unsigned long>(cpu.clock.now()),
              machine.costs().CyclesToSeconds(cpu.clock.now()) * 1e3);
  return 0;
}
