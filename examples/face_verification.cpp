// Copyright (c) Eleos reproduction authors. MIT license.
//
// The paper's biometric identity-checking server (§5.2) as a runnable
// example: a database of LBP face histograms stored in SUVM (several times
// larger than the simulated EPC), serving encrypted verification requests
// without a single enclave exit on the hot path.
//
// Run:  ./build/examples/face_verification [people]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/apps/faceverif.h"
#include "src/rpc/rpc_manager.h"
#include "src/suvm/suvm.h"

int main(int argc, char** argv) {
  using namespace eleos;

  const size_t people = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 200;
  const size_t db_bytes = people * apps::kHistogramBytes;
  std::printf("== Face verification: %zu identities, %.0f MiB database ==\n",
              people, static_cast<double>(db_bytes) / (1 << 20));

  sim::MachineConfig mc;
  mc.epc_frames = (24ull << 20) / 4096;  // small 24 MiB EPC: the DB won't fit
  mc.seal_mode = sim::SgxDriver::SealMode::kFast;
  sim::Machine machine(mc);
  sim::Enclave enclave(machine, "faceverif");

  suvm::SuvmConfig sc;
  sc.epc_pp_pages = (12ull << 20) / 4096;  // 12 MiB EPC++
  size_t backing = 1;
  while (backing < 2 * db_bytes) {
    backing <<= 1;
  }
  sc.backing_bytes = backing;
  sc.fast_seal = true;
  suvm::Suvm suvm(enclave, sc);
  apps::SuvmRegion region(suvm, db_bytes);

  apps::FaceVerifServer server(machine, region, people);
  std::printf("building LBP reference database...\n");
  server.BuildDatabase();

  rpc::RpcManager rpc(enclave, {.mode = rpc::RpcManager::Mode::kInline,
                                .use_cat = true});
  sim::CpuContext& cpu = machine.cpu(0);
  cpu.cos = rpc.enclave_cos();
  enclave.Enter(cpu);

  int genuine_accepted = 0;
  int impostors_rejected = 0;
  const int trials = 32;
  for (int i = 0; i < trials; ++i) {
    const uint64_t id = static_cast<uint64_t>(i) % people;

    // Exit-less network exchange, then verify a *genuine* probe (another
    // image variant of the same person).
    rpc.Call(&cpu, apps::kFaceImageDim * apps::kFaceImageDim / 16, [] {});
    const apps::Histogram genuine = apps::ComputeLbpHistogram(
        &cpu, machine.costs(), apps::SynthesizeFace(id, /*variant=*/3));
    genuine_accepted += server.Verify(&cpu, id, genuine) ? 1 : 0;

    // And an impostor probe (a different person claiming this identity).
    rpc.Call(&cpu, apps::kFaceImageDim * apps::kFaceImageDim / 16, [] {});
    const apps::Histogram impostor = apps::ComputeLbpHistogram(
        &cpu, machine.costs(), apps::SynthesizeFace(id + 7777));
    impostors_rejected += server.Verify(&cpu, id, impostor) ? 0 : 1;
  }
  enclave.Exit(cpu);

  std::printf("\ngenuine probes accepted:  %d / %d\n", genuine_accepted, trials);
  std::printf("impostor probes rejected: %d / %d\n", impostors_rejected, trials);
  std::printf("SUVM software faults: %lu   hardware EPC faults: %lu\n",
              static_cast<unsigned long>(suvm.stats().major_faults.load()),
              static_cast<unsigned long>(machine.driver().stats().faults));
  std::printf("TLB flushes on the serving thread: %lu (exit-less!)\n",
              static_cast<unsigned long>(cpu.tlb.flushes()));
  std::printf("average request cost: %.0f virtual cycles\n",
              static_cast<double>(cpu.clock.now()) / (2.0 * trials));
  return 0;
}
