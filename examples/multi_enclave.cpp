// Copyright (c) Eleos reproduction authors. MIT license.
//
// Multi-enclave ballooning (§3.3): two enclaves share the PRM; each queries
// the Eleos driver ioctl for its fair share and resizes its EPC++ page cache
// accordingly — the "memory ballooning" of the paper, with the runtime (not
// a hypervisor) adjusting the working set.
//
// Run:  ./build/examples/multi_enclave

#include <cstdio>
#include <cstring>
#include <memory>

#include "src/common/rng.h"
#include "src/suvm/suvm.h"

int main() {
  using namespace eleos;

  sim::MachineConfig mc;
  mc.epc_frames = (32ull << 20) / 4096;  // 32 MiB PRM for a quick demo
  mc.seal_mode = sim::SgxDriver::SealMode::kFast;
  sim::Machine machine(mc);

  std::printf("== Multi-enclave EPC++ ballooning (32 MiB PRM) ==\n\n");

  suvm::SuvmConfig sc;
  sc.epc_pp_pages = (24ull << 20) / 4096;  // each *wants* 24 MiB
  sc.backing_bytes = 64ull << 20;
  sc.fast_seal = true;

  sim::Enclave e1(machine, "tenant-1");
  suvm::Suvm s1(e1, sc);
  std::printf("tenant-1 alone: driver fair share = %zu frames\n",
              machine.driver().AvailableFramesFor(e1.id()));
  std::printf("tenant-1 balloon -> EPC++ target %zu pages\n\n",
              s1.BalloonPass(nullptr));

  // A second enclave starts: the fair share halves; both balloon down.
  sim::Enclave e2(machine, "tenant-2");
  suvm::Suvm s2(e2, sc);
  std::printf("tenant-2 started: fair share now %zu frames each\n",
              machine.driver().AvailableFramesFor(e1.id()));
  std::printf("tenant-1 balloon -> EPC++ target %zu pages\n",
              s1.BalloonPass(nullptr));
  std::printf("tenant-2 balloon -> EPC++ target %zu pages\n\n",
              s2.BalloonPass(nullptr));

  // Both tenants now work concurrently without thrashing the driver.
  const size_t buf = 16ull << 20;
  const uint64_t a1 = s1.Malloc(buf);
  const uint64_t a2 = s2.Malloc(buf);
  uint8_t page[4096];
  std::memset(page, 9, sizeof(page));
  for (size_t off = 0; off < buf; off += 4096) {
    s1.Write(nullptr, a1 + off, page, sizeof(page));
    s2.Write(nullptr, a2 + off, page, sizeof(page));
  }
  sim::CpuContext& cpu = machine.cpu(0);
  machine.driver().ResetStats();
  Xoshiro256 rng(1);
  const uint64_t t0 = cpu.clock.now();
  for (int i = 0; i < 2000; ++i) {
    s1.Read(&cpu, a1 + rng.NextBelow(buf / 4096) * 4096, page, 4096);
    s2.Read(&cpu, a2 + rng.NextBelow(buf / 4096) * 4096, page, 4096);
  }
  std::printf("4000 reads across both tenants: %.0f cycles/read\n",
              static_cast<double>(cpu.clock.now() - t0) / 4000.0);
  std::printf("hardware EPC faults during the run: %lu (ballooning keeps the "
              "driver out of the loop)\n",
              static_cast<unsigned long>(machine.driver().stats().faults));
  std::printf("software faults: tenant-1 %lu, tenant-2 %lu\n",
              static_cast<unsigned long>(s1.stats().major_faults.load()),
              static_cast<unsigned long>(s2.stats().major_faults.load()));

  // tenant-2 shuts down; tenant-1 balloons back up.
  return 0;
}
