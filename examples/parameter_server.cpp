// Copyright (c) Eleos reproduction authors. MIT license.
//
// The paper's motivating workload (§2) as a runnable example: a parameter
// server for distributed machine learning, storing model weights in a hash
// table and applying encrypted client updates in place.
//
// Runs the same server under four execution modes and reports the cost per
// request, demonstrating exactly the slowdowns Figure 1 is about — and how
// Eleos removes them.
//
// Run:  ./build/examples/parameter_server [data_mib]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/apps/param_server.h"
#include "src/common/table.h"

int main(int argc, char** argv) {
  using namespace eleos;
  using apps::PsBackend;
  using apps::PsConfig;
  using apps::PsExecMode;

  const size_t data_mib = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 16;
  const size_t n_requests = 5000;
  std::printf("== Parameter server: %zu MiB of weights, %zu encrypted requests ==\n\n",
              data_mib, n_requests);

  struct ModeSpec {
    const char* name;
    PsExecMode mode;
    PsBackend backend;
  };
  const ModeSpec modes[] = {
      {"native (no SGX)", PsExecMode::kNativeUntrusted, PsBackend::kUntrusted},
      {"vanilla SGX (OCALL + EPC paging)", PsExecMode::kSgxOcall,
       PsBackend::kEnclave},
      {"Eleos RPC (exit-less syscalls)", PsExecMode::kSgxRpc, PsBackend::kEnclave},
      {"Eleos RPC + CAT + SUVM", PsExecMode::kSgxRpcCat, PsBackend::kSuvm},
  };

  TextTable table({"configuration", "cycles/request", "slowdown vs native"});
  double native_cycles = 0.0;
  for (const ModeSpec& spec : modes) {
    sim::MachineConfig mc;
    mc.seal_mode = sim::SgxDriver::SealMode::kFast;
    sim::Machine machine(mc);
    PsConfig cfg;
    cfg.data_bytes = data_mib << 20;
    cfg.mode = spec.mode;
    cfg.backend = spec.backend;
    if (spec.backend == PsBackend::kSuvm) {
      cfg.suvm.fast_seal = true;
      cfg.suvm.epc_pp_pages = (60ull << 20) / 4096;
    }
    const apps::PsRunResult r =
        apps::RunPsWorkload(machine, cfg, /*updates=*/4, /*hot=*/0, n_requests);
    const double per_req = r.CyclesPerRequest();
    if (native_cycles == 0.0) {
      native_cycles = per_req;
    }
    char slowdown[32];
    snprintf(slowdown, sizeof(slowdown), "%.1fx", per_req / native_cycles);
    table.Row().Cell(spec.name).Cell(per_req, "%.0f").Cell(slowdown);
  }
  table.Print();

  std::printf(
      "\nWhat to look for: the OCALL configuration pays ~8,000 cycles of exit "
      "costs per request plus TLB/LLC damage; Eleos's exit-less RPC removes "
      "the exits and SUVM removes the hardware paging (try 512 MiB data to "
      "see the out-of-EPC effect).\n");
  return 0;
}
