#!/usr/bin/env python3
"""Validates BENCH_*.json baseline files emitted by the bench binaries.

Checks (per file):
  * parses as JSON, schema_version == 1, mode in {smoke, full}
  * latency_cycles has count > 0 and p50 <= p95 <= p99
  * every embedded histogram block is internally consistent
  * metrics.counters is present and non-empty

Exits non-zero with a message naming the offending file/field, so tier1.sh
fails on malformed or empty output.
"""

import json
import sys


def check_latency_block(path: str, name: str, block: dict) -> None:
    for key in ("count", "mean", "p50", "p95", "p99"):
        if key not in block:
            fail(f"{path}: {name} is missing '{key}'")
    if block["count"] <= 0:
        fail(f"{path}: {name}.count must be > 0, got {block['count']}")
    if not (block["p50"] <= block["p95"] <= block["p99"]):
        fail(
            f"{path}: {name} percentiles not ordered: "
            f"p50={block['p50']} p95={block['p95']} p99={block['p99']}"
        )


def fail(msg: str) -> None:
    print(f"validate_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    if doc.get("schema_version") != 1:
        fail(f"{path}: schema_version must be 1, got {doc.get('schema_version')}")
    if doc.get("mode") not in ("smoke", "full"):
        fail(f"{path}: mode must be smoke|full, got {doc.get('mode')}")
    if not doc.get("bench"):
        fail(f"{path}: missing bench name")
    if not isinstance(doc.get("workload"), dict) or not doc["workload"]:
        fail(f"{path}: missing/empty workload")

    if "latency_cycles" not in doc:
        fail(f"{path}: missing latency_cycles")
    check_latency_block(path, "latency_cycles", doc["latency_cycles"])
    # Any other top-level histogram blocks ride the same checks (zero-count
    # blocks are allowed for optional subsystems, ordering still must hold).
    for key, value in doc.items():
        if key == "latency_cycles" or not isinstance(value, dict):
            continue
        if {"p50", "p95", "p99"} <= value.keys() and value.get("count", 0) > 0:
            check_latency_block(path, key, value)

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail(f"{path}: missing metrics snapshot")
    counters = metrics.get("counters")
    if not isinstance(counters, dict) or not counters:
        fail(f"{path}: metrics.counters is missing or empty")
    if any(not isinstance(v, int) or v < 0 for v in counters.values()):
        fail(f"{path}: metrics.counters has non-integer or negative values")

    print(f"validate_bench: OK: {path} ({doc['bench']}, {doc['mode']}, "
          f"{len(counters)} counters)")


def main() -> None:
    if len(sys.argv) < 2:
        fail("usage: validate_bench.py <bench.json> [...]")
    for path in sys.argv[1:]:
        validate(path)


if __name__ == "__main__":
    main()
