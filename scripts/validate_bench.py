#!/usr/bin/env python3
"""Validates BENCH_*.json baseline files emitted by the bench binaries.

Checks (per file):
  * parses as JSON, schema_version == 2, mode in {smoke, full}
  * the timeline block (schema v2) is present and internally consistent:
    positive window_cycles, non-empty windows with monotonically increasing
    indices and end_tsc, per-window counter deltas/rates that agree, ordered
    histogram percentiles, and well-formed SLO evaluations
  * latency_cycles has count > 0 and p50 <= p95 <= p99
  * every embedded histogram block is internally consistent
  * metrics.counters is present, non-empty, and strictly non-negative
    (levels that may legally decrease live in metrics.gauges)
  * metrics.gauges is present and holds integers (negative allowed)
  * rpc_baseline: the hostile profile pair is present, the breaker run
    reports its self-healing counters, and the breaker's p99 does not
    exceed the static-budget p99 (the tail-latency cap the breaker buys)
  * rpc_baseline: the async_batch profile is present, batched dispatch is
    >= 1.5x the serial cycles-per-call, the rpc.batch_size histogram was
    recorded, and the split late-completion counter family survived
    PublishTelemetry
  * rpc_baseline: the hostile boundary profile is present with
    rejected_inputs > 0 and iago_rejects > 0 (the Iago validation layer
    fired), while the benign main snapshot holds boundary.rejected_inputs
    and boundary.double_fetch_races at exactly zero (no false rejects on an
    honest host)
  * suvm_baseline: the quarantine counters are present in the snapshot
  * suvm_baseline: the parallel paging counter family
    (suvm.fault_coalesced, suvm.gate_wait_cycles, suvm.prefetch.*) and the
    suvm.epcpp_free_slots gauge are present; the main profile runs with
    prefetch disabled, so its suvm.prefetch.* counters must be exactly zero
  * suvm_baseline: the parallel_fault block is present with per-thread-count
    sub-blocks, its 1->4 thread speedup is >= 1.8x (crypto escaped the
    paging gate's serial slice), and the prefetch demo issued and hit

Exits non-zero with a message naming the offending file/field, so tier1.sh
fails on malformed or empty output.
"""

import json
import sys


def check_latency_block(path: str, name: str, block: dict) -> None:
    for key in ("count", "mean", "p50", "p95", "p99"):
        if key not in block:
            fail(f"{path}: {name} is missing '{key}'")
    if block["count"] <= 0:
        fail(f"{path}: {name}.count must be > 0, got {block['count']}")
    if not (block["p50"] <= block["p95"] <= block["p99"]):
        fail(
            f"{path}: {name} percentiles not ordered: "
            f"p50={block['p50']} p95={block['p95']} p99={block['p99']}"
        )


def fail(msg: str) -> None:
    print(f"validate_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_timeline(path: str, doc: dict) -> None:
    tl = doc.get("timeline")
    if not isinstance(tl, dict):
        fail(f"{path}: schema v2 requires a 'timeline' block")
    for key in ("window_cycles", "windows_recorded", "windows_dropped",
                "windows"):
        if key not in tl:
            fail(f"{path}: timeline is missing '{key}'")
    if tl["window_cycles"] <= 0:
        fail(f"{path}: timeline.window_cycles must be > 0")
    windows = tl["windows"]
    if not isinstance(windows, list) or not windows:
        fail(f"{path}: timeline.windows is missing or empty — the sampler "
             f"never cut a window (workload too short for window_cycles?)")
    if tl["windows_recorded"] < len(windows):
        fail(f"{path}: timeline.windows_recorded < exported window count")
    prev_index, prev_end = -1, -1
    for i, w in enumerate(windows):
        where = f"timeline.windows[{i}]"
        for key in ("index", "start_tsc", "end_tsc", "counters", "gauges",
                    "histograms", "slo"):
            if key not in w:
                fail(f"{path}: {where} is missing '{key}'")
        if w["index"] <= prev_index:
            fail(f"{path}: {where}.index not strictly increasing")
        if w["end_tsc"] <= prev_end:
            fail(f"{path}: {where}.end_tsc not strictly increasing")
        if w["start_tsc"] > w["end_tsc"]:
            fail(f"{path}: {where} has start_tsc > end_tsc")
        prev_index, prev_end = w["index"], w["end_tsc"]
        duration = w["end_tsc"] - w["start_tsc"]
        for name, c in w["counters"].items():
            if c.get("delta", -1) < 0:
                fail(f"{path}: {where}.counters[{name}].delta negative")
            rate = c.get("rate_per_mcycle")
            if duration > 0:
                expect = c["delta"] * 1e6 / duration
                if rate is None or abs(rate - expect) > max(1e-6, expect * 1e-3):
                    fail(f"{path}: {where}.counters[{name}] rate {rate} "
                         f"disagrees with delta/duration {expect}")
        for name, h in w["histograms"].items():
            if h.get("count", 0) <= 0:
                fail(f"{path}: {where}.histograms[{name}] has count <= 0 "
                     f"(empty histogram deltas must be omitted)")
            if not (h["p50"] <= h["p95"] <= h["p99"]):
                fail(f"{path}: {where}.histograms[{name}] percentiles "
                     f"not ordered")
        for j, e in enumerate(w["slo"]):
            for key in ("rule", "value", "threshold", "violated"):
                if key not in e:
                    fail(f"{path}: {where}.slo[{j}] is missing '{key}'")
            if not isinstance(e["violated"], bool):
                fail(f"{path}: {where}.slo[{j}].violated must be a bool")


def check_rpc_hostile(path: str, doc: dict) -> None:
    hostile = doc.get("hostile")
    if not isinstance(hostile, dict):
        fail(f"{path}: rpc_baseline is missing the hostile profile pair")
    for profile in ("static", "breaker"):
        block = hostile.get(profile)
        if not isinstance(block, dict) or "latency_cycles" not in block:
            fail(f"{path}: hostile.{profile}.latency_cycles missing")
        check_latency_block(
            path, f"hostile.{profile}.latency_cycles", block["latency_cycles"]
        )
    for key in ("breaker_opens", "breaker_short_circuits", "breaker_probes"):
        if key not in hostile["breaker"]:
            fail(f"{path}: hostile.breaker is missing '{key}'")
    if hostile["breaker"]["breaker_opens"] <= 0:
        fail(f"{path}: hostile.breaker never opened the breaker")
    static_p99 = hostile["static"]["latency_cycles"]["p99"]
    breaker_p99 = hostile["breaker"]["latency_cycles"]["p99"]
    if breaker_p99 > static_p99:
        fail(
            f"{path}: breaker p99 ({breaker_p99}) exceeds static-budget "
            f"p99 ({static_p99}) — the breaker is not capping spin cost"
        )


def check_rpc_boundary(path: str, doc: dict) -> None:
    boundary = doc.get("boundary")
    if not isinstance(boundary, dict):
        fail(f"{path}: rpc_baseline is missing the hostile boundary profile")
    for key in ("rejected_inputs", "double_fetch_races", "iago_rejects"):
        if key not in boundary:
            fail(f"{path}: boundary is missing '{key}'")
        if not isinstance(boundary[key], int) or boundary[key] < 0:
            fail(f"{path}: boundary.{key} must be a non-negative integer")
    if boundary["rejected_inputs"] <= 0:
        fail(
            f"{path}: boundary.rejected_inputs is 0 under the hostile "
            f"profile — the Iago validation layer never fired"
        )
    if boundary["iago_rejects"] <= 0:
        fail(f"{path}: boundary.iago_rejects is 0 under the hostile profile")
    # The benign main run must not reject anything: a false positive at the
    # boundary layer would silently turn honest host results into errors.
    counters = doc["metrics"]["counters"]
    for key in ("boundary.rejected_inputs", "boundary.double_fetch_races"):
        if key not in counters:
            fail(f"{path}: metrics.counters is missing '{key}'")
        if counters[key] != 0:
            fail(
                f"{path}: benign profile has {key}={counters[key]} — the "
                f"boundary layer rejected honest host results"
            )


def check_rpc_async_batch(path: str, doc: dict) -> None:
    ab = doc.get("async_batch")
    if not isinstance(ab, dict):
        fail(f"{path}: rpc_baseline is missing the async_batch profile")
    for key in ("serial_cycles_per_call", "batch_cycles_per_call", "speedup",
                "fallback_ocalls", "batch_size_hist"):
        if key not in ab:
            fail(f"{path}: async_batch is missing '{key}'")
    if ab["serial_cycles_per_call"] <= 0 or ab["batch_cycles_per_call"] <= 0:
        fail(f"{path}: async_batch cycles-per-call must be positive")
    if ab["speedup"] < 1.5:
        fail(
            f"{path}: async_batch speedup {ab['speedup']} < 1.5x — batched "
            f"submission is not amortizing the exit-less rendezvous"
        )
    check_latency_block(path, "async_batch.batch_size_hist",
                        ab["batch_size_hist"])


def check_suvm_parallel(path: str, doc: dict) -> None:
    counters = doc["metrics"]["counters"]
    for key in (
        "suvm.fault_coalesced",
        "suvm.gate_wait_cycles",
        "suvm.prefetch.issued",
        "suvm.prefetch.hits",
        "suvm.prefetch.wasted",
    ):
        if key not in counters:
            fail(f"{path}: metrics.counters is missing '{key}'")
    # The main profile runs with prefetch disabled: any non-zero value here
    # means the off-by-default guarantee (and bench_diff byte-identity for
    # single-threaded runs) regressed.
    for key in ("suvm.prefetch.issued", "suvm.prefetch.hits",
                "suvm.prefetch.wasted"):
        if counters[key] != 0:
            fail(
                f"{path}: main profile has {key}={counters[key]} but "
                f"prefetch is disabled there — the stream tracker fired "
                f"without opt-in"
            )
    if "suvm.epcpp_free_slots" not in doc["metrics"]["gauges"]:
        fail(f"{path}: metrics.gauges is missing 'suvm.epcpp_free_slots'")

    pf = doc.get("parallel_fault")
    if not isinstance(pf, dict):
        fail(f"{path}: suvm_baseline is missing the parallel_fault profile")
    for block in ("threads_1", "threads_2", "threads_4"):
        sub = pf.get(block)
        if not isinstance(sub, dict):
            fail(f"{path}: parallel_fault.{block} missing")
        for key in ("threads", "measured_reads", "major_faults",
                    "fault_coalesced", "gate_wait_cycles", "clock_cycles",
                    "cycles_per_fault"):
            if key not in sub:
                fail(f"{path}: parallel_fault.{block} is missing '{key}'")
        if sub["major_faults"] <= 0:
            fail(f"{path}: parallel_fault.{block} took no major faults")
        if sub["cycles_per_fault"] <= 0:
            fail(f"{path}: parallel_fault.{block}.cycles_per_fault must be "
                 f"positive")
    if "speedup" not in pf:
        fail(f"{path}: parallel_fault is missing 'speedup'")
    if pf["speedup"] < 1.8:
        fail(
            f"{path}: parallel_fault speedup {pf['speedup']} < 1.8x — the "
            f"paging gate is serializing more than the fault-logic slice "
            f"(crypto back inside the critical section?)"
        )
    demo = pf.get("prefetch_demo")
    if not isinstance(demo, dict):
        fail(f"{path}: parallel_fault.prefetch_demo missing")
    for key in ("pages", "issued", "hits", "wasted", "major_faults"):
        if key not in demo:
            fail(f"{path}: parallel_fault.prefetch_demo is missing '{key}'")
    if demo["issued"] <= 0 or demo["hits"] <= 0:
        fail(
            f"{path}: prefetch demo issued={demo['issued']} "
            f"hits={demo['hits']} — the stride prefetcher never fired on a "
            f"sequential walk"
        )


def validate(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    if doc.get("schema_version") != 2:
        fail(f"{path}: schema_version must be 2, got {doc.get('schema_version')}")
    if doc.get("mode") not in ("smoke", "full"):
        fail(f"{path}: mode must be smoke|full, got {doc.get('mode')}")
    if not doc.get("bench"):
        fail(f"{path}: missing bench name")
    if not isinstance(doc.get("workload"), dict) or not doc["workload"]:
        fail(f"{path}: missing/empty workload")

    if "latency_cycles" not in doc:
        fail(f"{path}: missing latency_cycles")
    check_latency_block(path, "latency_cycles", doc["latency_cycles"])
    # Any other top-level histogram blocks ride the same checks (zero-count
    # blocks are allowed for optional subsystems, ordering still must hold).
    for key, value in doc.items():
        if key == "latency_cycles" or not isinstance(value, dict):
            continue
        if {"p50", "p95", "p99"} <= value.keys() and value.get("count", 0) > 0:
            check_latency_block(path, key, value)

    check_timeline(path, doc)

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail(f"{path}: missing metrics snapshot")
    counters = metrics.get("counters")
    if not isinstance(counters, dict) or not counters:
        fail(f"{path}: metrics.counters is missing or empty")
    if any(not isinstance(v, int) or v < 0 for v in counters.values()):
        fail(f"{path}: metrics.counters has non-integer or negative values")
    gauges = metrics.get("gauges")
    if not isinstance(gauges, dict):
        fail(f"{path}: metrics.gauges is missing (gauge migration regressed?)")
    if any(not isinstance(v, int) for v in gauges.values()):
        fail(f"{path}: metrics.gauges has non-integer values")

    if doc["bench"] == "rpc_baseline":
        check_rpc_hostile(path, doc)
        check_rpc_async_batch(path, doc)
        check_rpc_boundary(path, doc)
        if "rpc.breaker_state" not in gauges:
            fail(f"{path}: metrics.gauges is missing 'rpc.breaker_state'")
        for key in (
            # Split late-completion family (stale-generation drops vs
            # abandoned-slot self-recycles) plus the liveness-fix counters;
            # absence means PublishTelemetry regressed.
            "rpc.stale_completions",
            "rpc.abandoned_recycles",
            "rpc.late_completions",
            "rpc.abandoned_slots",
            "rpc.terminal_abandons",
            "rpc.abandoned_scrubs",
            "rpc.async_calls",
        ):
            if key not in counters:
                fail(f"{path}: metrics.counters is missing '{key}'")
        hists = metrics.get("histograms")
        if not isinstance(hists, dict) or "rpc.batch_size" not in hists:
            fail(f"{path}: metrics.histograms is missing 'rpc.batch_size'")
    if doc["bench"] == "suvm_baseline":
        for key in (
            "suvm.pages_quarantined",
            "suvm.pages_restored",
            # Crash-consistency counters (zero when the profile ran without
            # crash_consistency, but the keys must exist: their absence means
            # PublishTelemetry lost the recovery block).
            "suvm.journal_appends",
            "suvm.journal_commits",
            "suvm.checkpoints",
            "suvm.host_crashes",
            "suvm.recovery.attempts",
            "suvm.recovery.pages_verified",
            "suvm.recovery.pages_quarantined",
            "suvm.recovery.journal_replayed",
            "suvm.recovery.journal_torn",
            "suvm.recovery.rollbacks_detected",
        ):
            if key not in counters:
                fail(f"{path}: metrics.counters is missing '{key}'")
        for key in ("suvm.epc_pp_in_use", "suvm.epc_pp_target",
                    "suvm.journal_bytes"):
            if key not in gauges:
                fail(f"{path}: metrics.gauges is missing '{key}'")
        check_suvm_parallel(path, doc)

    print(f"validate_bench: OK: {path} ({doc['bench']}, {doc['mode']}, "
          f"{len(counters)} counters, {len(gauges)} gauges, "
          f"{len(doc['timeline']['windows'])} timeline windows)")


def main() -> None:
    if len(sys.argv) < 2:
        fail("usage: validate_bench.py <bench.json> [...]")
    for path in sys.argv[1:]:
        validate(path)


if __name__ == "__main__":
    main()
