#!/usr/bin/env bash
# Tier-1 verification.
#
# 1. Full build + the whole test suite (the seed's tier-1 gate). The long
#    chaos soak (label `soak`) is excluded here — its smoke variant runs as a
#    normal test; the full-length run is scripts/soak.sh.
# 2. A ThreadSanitizer build (-DELEOS_SANITIZE=thread) re-running the
#    concurrency-sensitive suites: the lock-free job queue / worker pool /
#    watchdog, SUVM's striped paging locks, the relaxed-atomic telemetry
#    layer, the HealthFsm, the fault-injection paths that deliberately race
#    workers against submitter timeouts, the boundary fuzz (a live
#    scribbler thread storing garbage into the shared job slots), and the
#    time-series sampler (cut inside ChargeCost under component locks).
# 3. An ASan+UBSan build re-running the hostile-host suites: fault injection,
#    the chaos-soak smoke, crash recovery (kill/restart over a surviving
#    arena), the secure channel, and the boundary fuzz — the paths that poke
#    at lifetimes (abandoned jobs, quarantined pages, dead enclave
#    instances, tampered/scribbled slots).
# 4. A benchmark smoke stage: runs the baseline benches end-to-end and
#    validates the emitted BENCH_*.json (fails on malformed/empty output,
#    including the schema-v2 timeline block) plus the TRACE_*.json span
#    traces (phase balance, per-track timestamp monotonicity, span-id
#    referential integrity, the cross-boundary worker-child link in the RPC
#    trace, and counter tracks cross-checked against the .timeline.json
#    sibling), then diffs the smoke numbers against the committed baselines
#    with scripts/bench_diff.py.
#
# ELEOS_FLIGHT_DIR is exported for the suite runs: any soak/chaos harness
# that fails dumps a post-mortem flight bundle there (CI uploads it).
set -euo pipefail
cd "$(dirname "$0")/.."

export ELEOS_FLIGHT_DIR="${ELEOS_FLIGHT_DIR:-$PWD/flight}"
mkdir -p "$ELEOS_FLIGHT_DIR"

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j"$(nproc)" -LE soak)

TSAN_TESTS='^(rpc_test|rpc_stress_test|rpc_async_test|suvm_test|suvm_parallel_test|suvm_property_test|fault_injection_test|telemetry_test|health_test|span_test|timeseries_test|flight_recorder_test|crash_recovery_test|boundary_fuzz_test)$'
cmake -B build-tsan -S . -DELEOS_SANITIZE=thread
cmake --build build-tsan -j --target \
  rpc_test rpc_stress_test rpc_async_test suvm_test suvm_parallel_test \
  suvm_property_test \
  fault_injection_test telemetry_test health_test span_test \
  timeseries_test flight_recorder_test \
  crash_recovery_test boundary_fuzz_test
(cd build-tsan && ctest --output-on-failure -R "$TSAN_TESTS")

ASAN_TESTS='^(fault_injection_test|chaos_soak_test|crash_recovery_test|secure_channel_test|boundary_fuzz_test|flight_recorder_test|suvm_parallel_test)$'
cmake -B build-asan -S . -DELEOS_SANITIZE=address,undefined
cmake --build build-asan -j --target \
  fault_injection_test chaos_soak_test crash_recovery_test \
  secure_channel_test boundary_fuzz_test flight_recorder_test \
  suvm_parallel_test
(cd build-asan && ctest --output-on-failure -R "$ASAN_TESTS")

OUT_DIR="$(mktemp -d)" scripts/bench.sh --smoke
