#!/usr/bin/env bash
# Tier-1 verification.
#
# 1. Full build + the whole test suite (the seed's tier-1 gate).
# 2. A ThreadSanitizer build (-DELEOS_SANITIZE=thread) re-running the
#    concurrency-sensitive suites: the lock-free job queue / worker pool /
#    watchdog, SUVM's striped paging locks, the relaxed-atomic telemetry
#    layer, and the fault-injection paths that deliberately race workers
#    against submitter timeouts.
# 3. A benchmark smoke stage: runs the baseline benches end-to-end and
#    validates the emitted BENCH_*.json (fails on malformed/empty output).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j"$(nproc)")

TSAN_TESTS='^(rpc_test|rpc_stress_test|suvm_test|suvm_property_test|fault_injection_test|telemetry_test)$'
cmake -B build-tsan -S . -DELEOS_SANITIZE=thread
cmake --build build-tsan -j --target \
  rpc_test rpc_stress_test suvm_test suvm_property_test fault_injection_test \
  telemetry_test
(cd build-tsan && ctest --output-on-failure -R "$TSAN_TESTS")

OUT_DIR="$(mktemp -d)" scripts/bench.sh --smoke
