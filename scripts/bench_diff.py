#!/usr/bin/env python3
"""Diffs two BENCH_*.json files and gates on regressions.

Usage:
    bench_diff.py [--threshold 0.10] [--all] baseline.json candidate.json

Compares the *scale-invariant* numeric leaves of the two documents — latency
percentiles/means, cycles-per-call figures, and speedups — and prints the
per-metric % delta for each. Exits nonzero when any metric regressed by more
than --threshold (fractional, default 0.10 = 10%); improvements are printed
but never fatal.

Why only scale-invariant keys: smoke and full runs execute very different
operation counts, so raw counts (counters, op totals, timeline windows)
differ by construction and a cross-mode diff of them is meaningless.
Percentiles of per-op latency and cycles-per-call ratios are what the
paper's claims are made of, and they are comparable across modes. The
committed baselines happen to be smoke-mode (CI diffs same-mode, where the
deterministic simulation is byte-identical), but the restriction keeps a
full-vs-smoke diff honest too. --all widens the comparison to every shared
numeric leaf (same-mode diffing only).

Direction: most compared metrics are latency-like (higher = worse). Keys
ending in "speedup" are throughput-like (lower = worse) and the delta sign is
inverted accordingly.
"""

import argparse
import json
import sys

# Leaf key names that are comparable across smoke/full modes. Matched against
# the last component of the dotted path.
LATENCY_LIKE_SUFFIXES = ("p50", "p95", "p99", "mean")
LATENCY_LIKE_EXACT = (
    "serial_cycles_per_call",
    "batch_cycles_per_call",
    "cycles_per_call",
    "cycles_per_op",
)
THROUGHPUT_LIKE_EXACT = ("speedup",)

# Subtrees that are run-shaped (raw counts, window contents, ring tails):
# never comparable across modes, and noisy even same-mode.
EXCLUDED_PREFIXES = ("metrics.", "timeline.", "trace.")
EXCLUDED_KEYS = ("schema_version", "count", "sum")


def collect(doc, prefix=""):
    """Flattens numeric leaves into {dotted.path: float}."""
    out = {}
    if isinstance(doc, dict):
        for key, value in doc.items():
            path = f"{prefix}{key}"
            if isinstance(value, (dict, list)):
                out.update(collect(value, f"{path}."))
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                out[path] = float(value)
    elif isinstance(doc, list):
        for i, value in enumerate(doc):
            out.update(collect(value, f"{prefix}{i}."))
    return out


def comparable(path, widen):
    if any(path.startswith(p) for p in EXCLUDED_PREFIXES):
        return False
    leaf = path.rsplit(".", 1)[-1]
    if leaf in EXCLUDED_KEYS:
        return False
    if widen:
        return True
    return (
        leaf.endswith(LATENCY_LIKE_SUFFIXES)
        or leaf in LATENCY_LIKE_EXACT
        or leaf in THROUGHPUT_LIKE_EXACT
    )


def lower_is_worse(path):
    return path.rsplit(".", 1)[-1] in THROUGHPUT_LIKE_EXACT


def main():
    parser = argparse.ArgumentParser(
        description="diff two BENCH_*.json files, fail on regressions")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="fractional regression gate (default 0.10)")
    parser.add_argument("--all", action="store_true",
                        help="compare every shared numeric leaf, not just the "
                             "scale-invariant set (same-mode diffing only)")
    args = parser.parse_args()

    docs = []
    for path in (args.baseline, args.candidate):
        try:
            with open(path, encoding="utf-8") as f:
                docs.append(json.load(f))
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench_diff: FAIL: {path}: {e}", file=sys.stderr)
            return 1
    base, cand = (collect(d) for d in docs)

    shared = sorted(
        p for p in base if p in cand and comparable(p, args.all))
    if not shared:
        print("bench_diff: FAIL: no comparable metrics shared between "
              f"{args.baseline} and {args.candidate}", file=sys.stderr)
        return 1

    regressions = []
    width = max(len(p) for p in shared)
    for path in shared:
        b, c = base[path], cand[path]
        if b == 0.0:
            # No baseline signal: print but never gate (a 0 -> nonzero jump
            # has no defined percentage).
            delta_str = "   n/a" if c == 0.0 else "  new!"
            print(f"  {path:<{width}}  {b:>14.1f} -> {c:>14.1f}  {delta_str}")
            continue
        delta = (c - b) / b
        regressed = (-delta if lower_is_worse(path) else delta)
        # ">= threshold" with an epsilon: a hand-degraded exactly-10% p99
        # regression must trip a 0.10 gate.
        fatal = regressed + 1e-12 >= args.threshold
        marker = " REGRESSION" if fatal else ""
        print(f"  {path:<{width}}  {b:>14.1f} -> {c:>14.1f}  "
              f"{delta * 100.0:+8.2f}%{marker}")
        if fatal:
            regressions.append((path, delta))

    if regressions:
        print(f"bench_diff: FAIL: {len(regressions)} metric(s) regressed "
              f"beyond {args.threshold * 100.0:.1f}% "
              f"({args.baseline} -> {args.candidate}):", file=sys.stderr)
        for path, delta in regressions:
            print(f"bench_diff:   {path}: {delta * 100.0:+.2f}%",
                  file=sys.stderr)
        return 1
    print(f"bench_diff: OK: {len(shared)} metrics within "
          f"{args.threshold * 100.0:.1f}% "
          f"({args.baseline} -> {args.candidate})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
