#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON emitted by the span tracer.

Checks, per track (pid, tid):
  * duration-event phases balance: every "B" has a matching "E" (the span
    exporter only emits "X"/"i"/"M", but hand-written traces stay checkable);
  * timestamps are monotonically non-decreasing in file order ("X"/"B"/"E"/"i"
    events; metadata carries no timestamp);
  * "X" events have a non-negative dur;
  * counter events ("C") carry a numeric args.value.
Globally:
  * every instant event ("i") that references a span (args.span_id != 0)
    points at an "X" span that exists in the file;
  * every "X" span's args.parent (when nonzero) exists too.

--require-worker-child additionally asserts the cross-boundary causal link
the exit-less RPC path promises: at least one "rpc.worker_exec" complete
event whose args.parent is an "rpc.call" span on a *different* track.

--timeline-from=<json> cross-checks the trace's "C" (counter-track) events
against the time-series windows they were exported from: every C event named
"timeline.<metric>" at ts T must match a window with end_tsc == T whose
counter delta (or gauge level) for <metric> equals args.value. The file may
be a bare timeline block (the .timeline.json sibling the baseline benches
write) or a whole BENCH document with a "timeline" key.

Usage: validate_trace.py [--require-worker-child] [--timeline-from=<json>]
                         trace.json [more.json ...]
"""

import json
import sys


def fail(path, msg):
    print(f"validate_trace: {path}: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(path, require_worker_child, timeline=None):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(path, "no traceEvents")

    span_ids = {}       # args.id -> event, for "X" events
    open_stacks = {}    # (pid, tid) -> count of unmatched "B"
    last_ts = {}        # (pid, tid) -> last seen timestamp
    instants = []
    counters = []       # "C" counter-track samples
    timed = 0

    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph is None:
            fail(path, f"event {i} has no phase")
        if ph == "M":
            continue
        track = (ev.get("pid"), ev.get("tid"))
        if ph in ("X", "B", "E", "i", "C"):
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)):
                fail(path, f"event {i} ({ph}) has no numeric ts")
            if track in last_ts and ts < last_ts[track]:
                fail(path, f"event {i}: ts {ts} < {last_ts[track]} on track "
                           f"{track} (per-track timestamps must not decrease)")
            last_ts[track] = ts
            timed += 1
        if ph == "B":
            open_stacks[track] = open_stacks.get(track, 0) + 1
        elif ph == "E":
            if open_stacks.get(track, 0) <= 0:
                fail(path, f"event {i}: 'E' with no open 'B' on track {track}")
            open_stacks[track] -= 1
        elif ph == "X":
            if ev.get("dur", 0) < 0:
                fail(path, f"event {i}: negative dur")
            sid = ev.get("args", {}).get("id")
            if sid:
                if sid in span_ids:
                    fail(path, f"event {i}: duplicate span id {sid}")
                span_ids[sid] = ev
        elif ph == "i":
            instants.append((i, ev))
        elif ph == "C":
            value = ev.get("args", {}).get("value")
            if not isinstance(value, (int, float)):
                fail(path, f"event {i}: 'C' without numeric args.value")
            counters.append((i, ev))

    for track, depth in open_stacks.items():
        if depth != 0:
            fail(path, f"track {track}: {depth} unmatched 'B' event(s)")
    if timed == 0:
        fail(path, "no timed events")

    for i, ev in enumerate(events):
        if ev.get("ph") != "X":
            continue
        parent = ev.get("args", {}).get("parent", 0)
        if parent and parent not in span_ids:
            fail(path, f"event {i}: parent span {parent} not in trace")
    for i, ev in instants:
        sid = ev.get("args", {}).get("span_id", 0)
        if sid and sid not in span_ids:
            fail(path, f"instant event {i}: span_id {sid} not in trace")

    if require_worker_child:
        linked = 0
        for sid, ev in span_ids.items():
            if ev.get("name") != "rpc.worker_exec":
                continue
            parent = span_ids.get(ev.get("args", {}).get("parent", 0))
            if (parent is not None and parent.get("name") == "rpc.call"
                    and parent.get("tid") != ev.get("tid")):
                linked += 1
        if linked == 0:
            fail(path, "no rpc.worker_exec span with an rpc.call parent on "
                       "another track (cross-boundary propagation broken)")

    if timeline is not None:
        check_counter_tracks(path, counters, timeline)

    print(f"validate_trace: {path}: OK "
          f"({len(span_ids)} spans, {len(instants)} instants, "
          f"{len(counters)} counter samples, {len(last_ts)} tracks)")


def check_counter_tracks(path, counters, timeline):
    """Every C event must equal the window value it was exported from."""
    windows = timeline.get("windows", [])
    by_end = {w["end_tsc"]: w for w in windows}
    if not counters:
        fail(path, "--timeline-from given but the trace has no 'C' events")
    checked = 0
    for i, ev in counters:
        name = ev.get("name", "")
        if not name.startswith("timeline."):
            continue
        metric = name[len("timeline."):]
        ts = ev["ts"]
        w = by_end.get(ts)
        if w is None:
            fail(path, f"counter event {i} ({name}) at ts {ts} matches no "
                       f"timeline window end_tsc")
        value = ev["args"]["value"]
        c = w.get("counters", {}).get(metric)
        if c is not None:
            if c["delta"] != value:
                fail(path, f"counter event {i} ({name}) value {value} != "
                           f"window {w['index']} delta {c['delta']}")
        elif metric in w.get("gauges", {}):
            if w["gauges"][metric] != value:
                fail(path, f"counter event {i} ({name}) value {value} != "
                           f"window {w['index']} gauge {w['gauges'][metric]}")
        else:
            fail(path, f"counter event {i} ({name}) has no matching counter "
                       f"or gauge in window {w['index']}")
        checked += 1
    if checked == 0:
        fail(path, "no timeline.* counter events to cross-check")


def main(argv):
    require_worker_child = False
    timeline = None
    paths = []
    for arg in argv[1:]:
        if arg == "--require-worker-child":
            require_worker_child = True
        elif arg.startswith("--timeline-from="):
            tl_path = arg[len("--timeline-from="):]
            with open(tl_path, "r", encoding="utf-8") as f:
                doc = json.load(f)
            # Accept a whole BENCH document or a bare timeline block.
            timeline = doc.get("timeline", doc)
            if "windows" not in timeline:
                print(f"validate_trace: {tl_path}: no timeline windows",
                      file=sys.stderr)
                return 1
        else:
            paths.append(arg)
    if not paths:
        print(__doc__, file=sys.stderr)
        return 2
    for path in paths:
        validate(path, require_worker_child, timeline)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
