#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON emitted by the span tracer.

Checks, per track (pid, tid):
  * duration-event phases balance: every "B" has a matching "E" (the span
    exporter only emits "X"/"i"/"M", but hand-written traces stay checkable);
  * timestamps are monotonically non-decreasing in file order ("X"/"B"/"E"/"i"
    events; metadata carries no timestamp);
  * "X" events have a non-negative dur.
Globally:
  * every instant event ("i") that references a span (args.span_id != 0)
    points at an "X" span that exists in the file;
  * every "X" span's args.parent (when nonzero) exists too.

--require-worker-child additionally asserts the cross-boundary causal link
the exit-less RPC path promises: at least one "rpc.worker_exec" complete
event whose args.parent is an "rpc.call" span on a *different* track.

Usage: validate_trace.py [--require-worker-child] trace.json [more.json ...]
"""

import json
import sys


def fail(path, msg):
    print(f"validate_trace: {path}: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(path, require_worker_child):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(path, "no traceEvents")

    span_ids = {}       # args.id -> event, for "X" events
    open_stacks = {}    # (pid, tid) -> count of unmatched "B"
    last_ts = {}        # (pid, tid) -> last seen timestamp
    instants = []
    timed = 0

    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph is None:
            fail(path, f"event {i} has no phase")
        if ph == "M":
            continue
        track = (ev.get("pid"), ev.get("tid"))
        if ph in ("X", "B", "E", "i"):
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)):
                fail(path, f"event {i} ({ph}) has no numeric ts")
            if track in last_ts and ts < last_ts[track]:
                fail(path, f"event {i}: ts {ts} < {last_ts[track]} on track "
                           f"{track} (per-track timestamps must not decrease)")
            last_ts[track] = ts
            timed += 1
        if ph == "B":
            open_stacks[track] = open_stacks.get(track, 0) + 1
        elif ph == "E":
            if open_stacks.get(track, 0) <= 0:
                fail(path, f"event {i}: 'E' with no open 'B' on track {track}")
            open_stacks[track] -= 1
        elif ph == "X":
            if ev.get("dur", 0) < 0:
                fail(path, f"event {i}: negative dur")
            sid = ev.get("args", {}).get("id")
            if sid:
                if sid in span_ids:
                    fail(path, f"event {i}: duplicate span id {sid}")
                span_ids[sid] = ev
        elif ph == "i":
            instants.append((i, ev))

    for track, depth in open_stacks.items():
        if depth != 0:
            fail(path, f"track {track}: {depth} unmatched 'B' event(s)")
    if timed == 0:
        fail(path, "no timed events")

    for i, ev in enumerate(events):
        if ev.get("ph") != "X":
            continue
        parent = ev.get("args", {}).get("parent", 0)
        if parent and parent not in span_ids:
            fail(path, f"event {i}: parent span {parent} not in trace")
    for i, ev in instants:
        sid = ev.get("args", {}).get("span_id", 0)
        if sid and sid not in span_ids:
            fail(path, f"instant event {i}: span_id {sid} not in trace")

    if require_worker_child:
        linked = 0
        for sid, ev in span_ids.items():
            if ev.get("name") != "rpc.worker_exec":
                continue
            parent = span_ids.get(ev.get("args", {}).get("parent", 0))
            if (parent is not None and parent.get("name") == "rpc.call"
                    and parent.get("tid") != ev.get("tid")):
                linked += 1
        if linked == 0:
            fail(path, "no rpc.worker_exec span with an rpc.call parent on "
                       "another track (cross-boundary propagation broken)")

    print(f"validate_trace: {path}: OK "
          f"({len(span_ids)} spans, {len(instants)} instants, "
          f"{len(last_ts)} tracks)")


def main(argv):
    require_worker_child = False
    paths = []
    for arg in argv[1:]:
        if arg == "--require-worker-child":
            require_worker_child = True
        else:
            paths.append(arg)
    if not paths:
        print(__doc__, file=sys.stderr)
        return 2
    for path in paths:
        validate(path, require_worker_child)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
