#!/usr/bin/env bash
# Runs the baseline benchmarks and emits BENCH_rpc.json / BENCH_suvm.json,
# then validates the emitted files (schema, percentile sanity, non-empty
# counters). --smoke runs a small deterministic workload for CI; the default
# full mode is for recording real baselines.
#
# Each bench also records a span trace (TRACE_rpc.json / TRACE_suvm.json,
# each with a .folded flamegraph sibling) — the CI trace artifacts — and both
# are validated with scripts/validate_trace.py; the RPC trace must prove the
# cross-boundary link (worker-execution spans parented by enclave calls).
#
# Usage: scripts/bench.sh [--smoke]
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
OUT="${OUT_DIR:-$ROOT}"

MODE_FLAG=""
for arg in "$@"; do
  case "$arg" in
    --smoke) MODE_FLAG="--smoke" ;;
    *) echo "bench.sh: unknown argument '$arg'" >&2; exit 2 ;;
  esac
done

if [[ ! -d "$BUILD" ]]; then
  cmake -S "$ROOT" -B "$BUILD" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD" --target bench_baseline_rpc bench_baseline_suvm -j

"$BUILD/bench/bench_baseline_rpc" $MODE_FLAG --out "$OUT/BENCH_rpc.json" \
  --trace-out "$OUT/TRACE_rpc.json"
"$BUILD/bench/bench_baseline_suvm" $MODE_FLAG --out "$OUT/BENCH_suvm.json" \
  --trace-out "$OUT/TRACE_suvm.json"

python3 "$ROOT/scripts/validate_bench.py" \
  "$OUT/BENCH_rpc.json" "$OUT/BENCH_suvm.json"
python3 "$ROOT/scripts/validate_trace.py" --require-worker-child \
  "$OUT/TRACE_rpc.json"
python3 "$ROOT/scripts/validate_trace.py" "$OUT/TRACE_suvm.json"
echo "bench.sh: baselines written to $OUT/BENCH_{rpc,suvm}.json" \
  "(traces: $OUT/TRACE_{rpc,suvm}.json + .folded)"
