#!/usr/bin/env bash
# Runs the baseline benchmarks and emits BENCH_rpc.json / BENCH_suvm.json,
# then validates the emitted files (schema, percentile sanity, non-empty
# counters). --smoke runs a small deterministic workload for CI; the default
# full mode is for recording real baselines.
#
# Each bench also records a span trace (TRACE_rpc.json / TRACE_suvm.json,
# each with .folded flamegraph and .timeline.json siblings) — the CI trace
# artifacts — and both are validated with scripts/validate_trace.py; the RPC
# trace must prove the cross-boundary link (worker-execution spans parented
# by enclave calls), and both traces' counter tracks are cross-checked
# against the timeline windows they were exported from.
#
# When OUT_DIR points somewhere other than the repo root (CI does this), the
# freshly emitted BENCH_*.json are additionally diffed against the committed
# baselines with scripts/bench_diff.py: the scale-invariant metrics (latency
# percentiles, cycles-per-call, speedups) must stay within
# BENCH_DIFF_THRESHOLD (fractional, default 0.10). The committed baselines
# are smoke-mode artifacts regenerated in place via
# `OUT_DIR=$PWD scripts/bench.sh --smoke`, and the simulation is
# deterministic — a same-mode re-run is byte-identical, so any drift at all
# is a real code change. Set BENCH_DIFF_THRESHOLD=inf to report without
# gating.
#
# Usage: scripts/bench.sh [--smoke]
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
OUT="${OUT_DIR:-$ROOT}"

MODE_FLAG=""
for arg in "$@"; do
  case "$arg" in
    --smoke) MODE_FLAG="--smoke" ;;
    *) echo "bench.sh: unknown argument '$arg'" >&2; exit 2 ;;
  esac
done

if [[ ! -d "$BUILD" ]]; then
  cmake -S "$ROOT" -B "$BUILD" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD" --target bench_baseline_rpc bench_baseline_suvm -j

"$BUILD/bench/bench_baseline_rpc" $MODE_FLAG --out "$OUT/BENCH_rpc.json" \
  --trace-out "$OUT/TRACE_rpc.json"
"$BUILD/bench/bench_baseline_suvm" $MODE_FLAG --out "$OUT/BENCH_suvm.json" \
  --trace-out "$OUT/TRACE_suvm.json"

python3 "$ROOT/scripts/validate_bench.py" \
  "$OUT/BENCH_rpc.json" "$OUT/BENCH_suvm.json"
python3 "$ROOT/scripts/validate_trace.py" --require-worker-child \
  --timeline-from="$OUT/TRACE_rpc.json.timeline.json" "$OUT/TRACE_rpc.json"
python3 "$ROOT/scripts/validate_trace.py" \
  --timeline-from="$OUT/TRACE_suvm.json.timeline.json" "$OUT/TRACE_suvm.json"

# Regression gate: fresh numbers vs the committed baselines. Skipped when
# writing the baselines in place (OUT == ROOT: the diff would be a no-op).
if [[ "$OUT" != "$ROOT" ]]; then
  THRESH="${BENCH_DIFF_THRESHOLD:-0.10}"
  for name in rpc suvm; do
    if [[ -f "$ROOT/BENCH_$name.json" ]]; then
      python3 "$ROOT/scripts/bench_diff.py" --threshold "$THRESH" \
        "$ROOT/BENCH_$name.json" "$OUT/BENCH_$name.json"
    else
      echo "bench.sh: no committed BENCH_$name.json baseline, skipping diff"
    fi
  done
fi

echo "bench.sh: baselines written to $OUT/BENCH_{rpc,suvm}.json" \
  "(traces: $OUT/TRACE_{rpc,suvm}.json + .folded + .timeline.json)"
