#!/usr/bin/env bash
# Full-length soaks: the deterministic fault-schedule harness at scale
# (default 1.2M ops per seed, three seeds), followed by the kill/restart
# crash-recovery soak (default 200k ops per seed). The tier-1 suite runs the
# same harnesses as ~30k/~4k-op smokes; this script is the long version
# referenced by the `chaos_soak_full` / `crash_soak_full` ctest registrations
# (label `soak`, disabled by default so plain `ctest` stays fast).
#
# Usage: scripts/soak.sh [build_dir]
#   ELEOS_SOAK_OPS            chaos ops per seed     (default 1200000)
#   ELEOS_CRASH_SOAK_OPS      crash ops per seed     (default 200000)
#   ELEOS_BOUNDARY_FUZZ_OPS   boundary-fuzz ops/seed (default 200000)
#   ELEOS_SOAK_SEEDS          space-separated seeds  (default "1 2 3")
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
OPS="${ELEOS_SOAK_OPS:-1200000}"
CRASH_OPS="${ELEOS_CRASH_SOAK_OPS:-200000}"
FUZZ_OPS="${ELEOS_BOUNDARY_FUZZ_OPS:-200000}"
SEEDS="${ELEOS_SOAK_SEEDS:-1 2 3}"

for bin in chaos_soak_test crash_recovery_test boundary_fuzz_test; do
  if [[ ! -x "$BUILD/tests/$bin" ]]; then
    echo "soak.sh: $BUILD/tests/$bin not built (run cmake --build $BUILD)" >&2
    exit 2
  fi
done

for seed in $SEEDS; do
  echo "=== chaos soak: seed=$seed ops=$OPS ==="
  ELEOS_SOAK_OPS="$OPS" ELEOS_SOAK_SEED="$seed" \
    "$BUILD/tests/chaos_soak_test"
done

for seed in $SEEDS; do
  echo "=== crash soak: seed=$seed ops=$CRASH_OPS ==="
  # The env seed overrides every TEST_P param, so run a single param instance.
  ELEOS_CRASH_SOAK_OPS="$CRASH_OPS" ELEOS_CRASH_SOAK_SEED="$seed" \
    "$BUILD/tests/crash_recovery_test" \
    --gtest_filter='Seeds/CrashSoak.KillRestartRoundsConvergeToShadow/0'
done

# Long boundary fuzz: the tier-1 smoke's ~5k ops per seed become 200k+, with
# the concurrent scribbler and Iago windows live the whole run. The env seed
# offsets the base, so one param instance per seed is enough.
for seed in $SEEDS; do
  echo "=== boundary fuzz: seed=$seed ops=$FUZZ_OPS ==="
  ELEOS_BOUNDARY_FUZZ_OPS="$FUZZ_OPS" ELEOS_BOUNDARY_FUZZ_SEED="$seed" \
    "$BUILD/tests/boundary_fuzz_test" \
    --gtest_filter='Seeds/BoundaryFuzz.EveryOpEndsCorrectOrFailClosedUnderLiveScribbler/0'
done
echo "=== soak: all seeds clean ==="
