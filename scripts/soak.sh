#!/usr/bin/env bash
# Full-length chaos soak: the deterministic fault-schedule harness at scale
# (default 1.2M ops per seed, three seeds). The tier-1 suite runs the same
# harness as a ~30k-op smoke; this script is the long version referenced by
# the `chaos_soak_full` ctest registration (label `soak`, disabled by
# default so plain `ctest` stays fast).
#
# Usage: scripts/soak.sh [build_dir]
#   ELEOS_SOAK_OPS    ops per seed            (default 1200000)
#   ELEOS_SOAK_SEEDS  space-separated seeds   (default "1 2 3")
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
OPS="${ELEOS_SOAK_OPS:-1200000}"
SEEDS="${ELEOS_SOAK_SEEDS:-1 2 3}"

if [[ ! -x "$BUILD/tests/chaos_soak_test" ]]; then
  echo "soak.sh: $BUILD/tests/chaos_soak_test not built (run cmake --build $BUILD)" >&2
  exit 2
fi

for seed in $SEEDS; do
  echo "=== chaos soak: seed=$seed ops=$OPS ==="
  ELEOS_SOAK_OPS="$OPS" ELEOS_SOAK_SEED="$seed" \
    "$BUILD/tests/chaos_soak_test"
done
echo "=== chaos soak: all seeds clean ==="
